//! Monotone preference (scoring) functions.
//!
//! A top-k query maps each tuple `p` to `score(p) = f(p.x_1, …, p.x_d)` and
//! asks for the k tuples with the highest scores. The paper's framework
//! works for *any* function that is monotone (increasing or decreasing) on
//! every dimension: the score of the per-dimension preferred corner of a
//! rectangle then upper-bounds the score of every point inside, which is
//! what drives both the grid traversal order and its termination condition.
//!
//! Three families are built in, matching the evaluation section:
//!
//! * [`LinearFn`]: `f(x) = Σ wᵢ·xᵢ` (negative weights give decreasing
//!   dimensions, as in the paper's `x₁ − x₂` example);
//! * [`ProductFn`]: `f(x) = Π (aᵢ + xᵢ)` with `aᵢ ≥ 0` (Figure 21 a/b);
//! * [`QuadraticFn`]: `f(x) = Σ aᵢ·xᵢ²` (Figure 21 c/d).
//!
//! User-defined functions plug in through [`ScoringFunction`] and
//! [`ScoreFn::Custom`]. The engines dispatch through the [`ScoreFn`] enum so
//! the built-in families stay inlineable in the hot per-point loop.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Result, TkmError};
use crate::ids::TupleId;
use crate::ordered::OrderedF64;

/// Maximum supported dimensionality.
///
/// Lets `maxscore` build rectangle corners on the stack. The paper evaluates
/// d ∈ [2, 6]; 12 leaves generous headroom.
pub const MAX_DIMS: usize = 12;

/// Direction of monotonicity of a scoring function along one dimension.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Monotonicity {
    /// Larger attribute values give larger (or equal) scores.
    Increasing,
    /// Larger attribute values give smaller (or equal) scores.
    Decreasing,
}

impl Monotonicity {
    /// The coordinate of the preferred (score-maximising) side of an
    /// interval `[lo, hi]`.
    #[inline]
    pub fn preferred(self, lo: f64, hi: f64) -> f64 {
        match self {
            Monotonicity::Increasing => hi,
            Monotonicity::Decreasing => lo,
        }
    }

    /// The coordinate of the worst (score-minimising) side of `[lo, hi]`.
    #[inline]
    pub fn worst(self, lo: f64, hi: f64) -> f64 {
        match self {
            Monotonicity::Increasing => lo,
            Monotonicity::Decreasing => hi,
        }
    }
}

/// A scoring function that is monotone on every dimension.
///
/// Implementors must guarantee per-dimension monotonicity as reported by
/// [`ScoringFunction::monotonicity`]; the engines' correctness depends on it.
pub trait ScoringFunction: fmt::Debug + Send + Sync {
    /// Number of attributes the function consumes.
    fn dims(&self) -> usize;

    /// Evaluates the function. `coords.len()` must equal `self.dims()`.
    fn score(&self, coords: &[f64]) -> f64;

    /// Monotonicity along dimension `dim` (`0 ≤ dim < self.dims()`).
    fn monotonicity(&self, dim: usize) -> Monotonicity;
}

fn validate_params(params: &[f64], what: &str) -> Result<()> {
    if params.is_empty() {
        return Err(TkmError::InvalidParameter(format!(
            "{what}: at least one dimension required"
        )));
    }
    if params.len() > MAX_DIMS {
        return Err(TkmError::InvalidParameter(format!(
            "{what}: {} dimensions exceed MAX_DIMS = {MAX_DIMS}",
            params.len()
        )));
    }
    if let Some(bad) = params.iter().find(|v| !v.is_finite()) {
        return Err(TkmError::InvalidParameter(format!(
            "{what}: non-finite parameter {bad}"
        )));
    }
    Ok(())
}

/// Weighted sum `f(x) = Σ wᵢ·xᵢ`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearFn {
    weights: Box<[f64]>,
}

impl LinearFn {
    /// Creates a linear preference function from per-dimension weights.
    /// Negative weights make the corresponding dimension decreasing.
    pub fn new(weights: impl Into<Vec<f64>>) -> Result<LinearFn> {
        let weights = weights.into();
        validate_params(&weights, "LinearFn")?;
        Ok(LinearFn {
            weights: weights.into_boxed_slice(),
        })
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ScoringFunction for LinearFn {
    #[inline]
    fn dims(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.weights.len());
        let mut acc = 0.0;
        for (w, x) in self.weights.iter().zip(coords) {
            acc += w * x;
        }
        acc
    }

    #[inline]
    fn monotonicity(&self, dim: usize) -> Monotonicity {
        if self.weights[dim] < 0.0 {
            Monotonicity::Decreasing
        } else {
            Monotonicity::Increasing
        }
    }
}

/// Product form `f(x) = Π (aᵢ + xᵢ)`, `aᵢ ≥ 0` (Figure 21 a/b).
#[derive(Clone, Debug, PartialEq)]
pub struct ProductFn {
    offsets: Box<[f64]>,
}

impl ProductFn {
    /// Creates a product preference function; all offsets must be ≥ 0 so
    /// that the function is increasing on every dimension over the unit
    /// workspace.
    pub fn new(offsets: impl Into<Vec<f64>>) -> Result<ProductFn> {
        let offsets = offsets.into();
        validate_params(&offsets, "ProductFn")?;
        if let Some(bad) = offsets.iter().find(|v| **v < 0.0) {
            return Err(TkmError::InvalidParameter(format!(
                "ProductFn: offset {bad} < 0 breaks monotonicity on [0,1]^d"
            )));
        }
        Ok(ProductFn {
            offsets: offsets.into_boxed_slice(),
        })
    }

    /// The per-dimension offsets.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }
}

impl ScoringFunction for ProductFn {
    #[inline]
    fn dims(&self) -> usize {
        self.offsets.len()
    }

    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.offsets.len());
        let mut acc = 1.0;
        for (a, x) in self.offsets.iter().zip(coords) {
            acc *= a + x;
        }
        acc
    }

    #[inline]
    fn monotonicity(&self, _dim: usize) -> Monotonicity {
        Monotonicity::Increasing
    }
}

/// Weighted squares `f(x) = Σ aᵢ·xᵢ²` (Figure 21 c/d).
#[derive(Clone, Debug, PartialEq)]
pub struct QuadraticFn {
    weights: Box<[f64]>,
}

impl QuadraticFn {
    /// Creates a quadratic preference function. Negative weights make the
    /// corresponding dimension decreasing (on the non-negative unit space).
    pub fn new(weights: impl Into<Vec<f64>>) -> Result<QuadraticFn> {
        let weights = weights.into();
        validate_params(&weights, "QuadraticFn")?;
        Ok(QuadraticFn {
            weights: weights.into_boxed_slice(),
        })
    }

    /// The per-dimension weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ScoringFunction for QuadraticFn {
    #[inline]
    fn dims(&self) -> usize {
        self.weights.len()
    }

    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.weights.len());
        let mut acc = 0.0;
        for (w, x) in self.weights.iter().zip(coords) {
            acc += w * x * x;
        }
        acc
    }

    #[inline]
    fn monotonicity(&self, dim: usize) -> Monotonicity {
        if self.weights[dim] < 0.0 {
            Monotonicity::Decreasing
        } else {
            Monotonicity::Increasing
        }
    }
}

/// A scoring function, dispatched by enum so the built-in families inline.
#[derive(Clone, Debug)]
pub enum ScoreFn {
    /// `Σ wᵢ·xᵢ`.
    Linear(LinearFn),
    /// `Π (aᵢ + xᵢ)`.
    Product(ProductFn),
    /// `Σ aᵢ·xᵢ²`.
    Quadratic(QuadraticFn),
    /// Any user-supplied monotone function.
    Custom(Arc<dyn ScoringFunction>),
}

impl ScoreFn {
    /// Convenience constructor for the linear family.
    pub fn linear(weights: impl Into<Vec<f64>>) -> Result<ScoreFn> {
        Ok(ScoreFn::Linear(LinearFn::new(weights)?))
    }

    /// Convenience constructor for the product family.
    pub fn product(offsets: impl Into<Vec<f64>>) -> Result<ScoreFn> {
        Ok(ScoreFn::Product(ProductFn::new(offsets)?))
    }

    /// Convenience constructor for the quadratic family.
    pub fn quadratic(weights: impl Into<Vec<f64>>) -> Result<ScoreFn> {
        Ok(ScoreFn::Quadratic(QuadraticFn::new(weights)?))
    }

    /// Wraps a user-defined monotone function.
    pub fn custom(f: Arc<dyn ScoringFunction>) -> Result<ScoreFn> {
        if f.dims() == 0 || f.dims() > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "custom scoring function has unsupported dimensionality {}",
                f.dims()
            )));
        }
        Ok(ScoreFn::Custom(f))
    }

    /// Number of attributes the function consumes.
    #[inline]
    pub fn dims(&self) -> usize {
        match self {
            ScoreFn::Linear(f) => f.dims(),
            ScoreFn::Product(f) => f.dims(),
            ScoreFn::Quadratic(f) => f.dims(),
            ScoreFn::Custom(f) => f.dims(),
        }
    }

    /// Evaluates the function on a tuple's coordinates.
    #[inline]
    pub fn score(&self, coords: &[f64]) -> f64 {
        match self {
            ScoreFn::Linear(f) => f.score(coords),
            ScoreFn::Product(f) => f.score(coords),
            ScoreFn::Quadratic(f) => f.score(coords),
            ScoreFn::Custom(f) => f.score(coords),
        }
    }

    /// Monotonicity along `dim`.
    #[inline]
    pub fn monotonicity(&self, dim: usize) -> Monotonicity {
        match self {
            ScoreFn::Linear(f) => f.monotonicity(dim),
            ScoreFn::Product(f) => f.monotonicity(dim),
            ScoreFn::Quadratic(f) => f.monotonicity(dim),
            ScoreFn::Custom(f) => f.monotonicity(dim),
        }
    }

    /// Upper bound for the score of any point in the axis-parallel
    /// rectangle `[lo, hi]`: the score of the per-dimension preferred
    /// corner (the `maxscore` of the paper, §3.1).
    #[inline]
    pub fn max_score_rect(&self, lo: &[f64], hi: &[f64]) -> f64 {
        debug_assert_eq!(lo.len(), self.dims());
        debug_assert_eq!(hi.len(), self.dims());
        let mut corner = [0.0f64; MAX_DIMS];
        for dim in 0..self.dims() {
            corner[dim] = self.monotonicity(dim).preferred(lo[dim], hi[dim]);
        }
        self.score(&corner[..self.dims()])
    }

    /// Lower bound analogue of [`ScoreFn::max_score_rect`] (worst corner).
    #[inline]
    pub fn min_score_rect(&self, lo: &[f64], hi: &[f64]) -> f64 {
        debug_assert_eq!(lo.len(), self.dims());
        debug_assert_eq!(hi.len(), self.dims());
        let mut corner = [0.0f64; MAX_DIMS];
        for dim in 0..self.dims() {
            corner[dim] = self.monotonicity(dim).worst(lo[dim], hi[dim]);
        }
        self.score(&corner[..self.dims()])
    }
}

/// A `(score, tuple)` pair with the workspace-wide candidate order.
///
/// Candidates are compared by score; on ties the *older* tuple (smaller id)
/// wins. Every engine — TMA, SMA, TSL and the brute-force oracle — uses this
/// single comparator, so their reported results are identical even when
/// scores collide. The tie direction is chosen to be consistent with the
/// skyband dominance relation: a dominator must score at least as high *and*
/// expire later, and a later-expiring tuple of equal score ranks lower, so a
/// tuple with k dominators can indeed never appear in a top-k result.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scored {
    /// The tuple's score under the query's function.
    pub score: OrderedF64,
    /// The tuple's arrival sequence number.
    pub id: TupleId,
}

impl Scored {
    /// Creates a candidate from a raw score.
    #[inline]
    pub fn new(score: f64, id: TupleId) -> Scored {
        Scored {
            score: OrderedF64::new(score),
            id,
        }
    }
}

impl Ord for Scored {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Greater = better: higher score first, then smaller (older) id.
        self.score
            .cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scored {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_example() {
        // f(x1, x2) = x1 + 2*x2 from Figure 1(a).
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        assert_eq!(f.score(&[0.5, 0.25]), 1.0);
        assert_eq!(f.monotonicity(0), Monotonicity::Increasing);
        assert_eq!(f.max_score_rect(&[0.0, 0.0], &[1.0, 1.0]), 3.0);
        assert_eq!(f.min_score_rect(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn linear_mixed_monotonicity() {
        // f(x1, x2) = x1 - x2 from Figure 7(a): increasing on x1,
        // decreasing on x2; the preferred corner is the bottom-right.
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        assert_eq!(f.monotonicity(0), Monotonicity::Increasing);
        assert_eq!(f.monotonicity(1), Monotonicity::Decreasing);
        assert_eq!(f.max_score_rect(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
        assert_eq!(f.min_score_rect(&[0.0, 0.0], &[1.0, 1.0]), -1.0);
    }

    #[test]
    fn product_function() {
        // f(x1, x2) = x1 * x2 from Figure 7(b) is ProductFn with zero
        // offsets.
        let f = ScoreFn::product(vec![0.0, 0.0]).unwrap();
        assert_eq!(f.score(&[0.5, 0.5]), 0.25);
        assert_eq!(f.max_score_rect(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn product_rejects_negative_offsets() {
        assert!(ProductFn::new(vec![0.5, -0.1]).is_err());
    }

    #[test]
    fn quadratic_function() {
        let f = ScoreFn::quadratic(vec![2.0, 1.0]).unwrap();
        assert_eq!(f.score(&[0.5, 1.0]), 2.0 * 0.25 + 1.0);
        assert_eq!(f.max_score_rect(&[0.0, 0.0], &[1.0, 1.0]), 3.0);
    }

    #[test]
    fn maxscore_bounds_interior_points() {
        let f = ScoreFn::linear(vec![0.3, -0.7, 1.1]).unwrap();
        let lo = [0.2, 0.1, 0.4];
        let hi = [0.6, 0.9, 0.8];
        let bound = f.max_score_rect(&lo, &hi);
        // A grid of interior points must all score at or below the bound.
        for &a in &[0.2, 0.4, 0.6] {
            for &b in &[0.1, 0.5, 0.9] {
                for &c in &[0.4, 0.6, 0.8] {
                    assert!(f.score(&[a, b, c]) <= bound + 1e-12);
                }
            }
        }
    }

    #[test]
    fn scored_orders_by_score_then_age() {
        let better = Scored::new(2.0, TupleId(10));
        let worse = Scored::new(1.0, TupleId(1));
        assert!(better > worse);

        // Equal scores: the older tuple wins.
        let old = Scored::new(1.0, TupleId(1));
        let new = Scored::new(1.0, TupleId(2));
        assert!(old > new);
    }

    #[test]
    fn dimension_validation() {
        assert!(LinearFn::new(Vec::<f64>::new()).is_err());
        assert!(LinearFn::new(vec![0.0; MAX_DIMS + 1]).is_err());
        assert!(LinearFn::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn custom_function_dispatch() {
        #[derive(Debug)]
        struct MinFn(usize);
        impl ScoringFunction for MinFn {
            fn dims(&self) -> usize {
                self.0
            }
            fn score(&self, coords: &[f64]) -> f64 {
                coords.iter().copied().fold(f64::INFINITY, f64::min)
            }
            fn monotonicity(&self, _dim: usize) -> Monotonicity {
                Monotonicity::Increasing
            }
        }
        let f = ScoreFn::custom(Arc::new(MinFn(2))).unwrap();
        assert_eq!(f.score(&[0.3, 0.7]), 0.3);
        assert_eq!(f.max_score_rect(&[0.1, 0.2], &[0.5, 0.6]), 0.5);
    }
}
