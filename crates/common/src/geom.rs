//! Axis-parallel rectangles (hyper-rectangles).
//!
//! Used for grid-cell extents and for the constraint regions of constrained
//! top-k queries (paper §7). Bounds are treated as closed on both sides;
//! grid cells are conceptually half-open but the engines only ever need the
//! conservative closed-overlap test (visiting one extra boundary cell is
//! harmless, missing one would not be).

use crate::error::{Result, TkmError};

/// A closed axis-parallel rectangle `[lo, hi]` in d-dimensional space.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle; `lo[i] ≤ hi[i]` must hold for every dimension.
    pub fn new(lo: impl Into<Vec<f64>>, hi: impl Into<Vec<f64>>) -> Result<Rect> {
        let lo = lo.into();
        let hi = hi.into();
        if lo.is_empty() {
            return Err(TkmError::InvalidParameter(
                "Rect: at least one dimension required".into(),
            ));
        }
        if lo.len() != hi.len() {
            return Err(TkmError::DimensionMismatch {
                expected: lo.len(),
                got: hi.len(),
            });
        }
        for (i, (l, h)) in lo.iter().zip(&hi).enumerate() {
            if !l.is_finite() || !h.is_finite() {
                return Err(TkmError::InvalidParameter(format!(
                    "Rect: non-finite bound on dimension {i}"
                )));
            }
            if l > h {
                return Err(TkmError::InvalidParameter(format!(
                    "Rect: lo {l} > hi {h} on dimension {i}"
                )));
            }
        }
        Ok(Rect {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// The unit hyper-cube `[0,1]^d` — the paper's workspace.
    pub fn unit(dims: usize) -> Rect {
        Rect {
            lo: vec![0.0; dims].into_boxed_slice(),
            hi: vec![1.0; dims].into_boxed_slice(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Whether the point lies inside (closed bounds).
    #[inline]
    pub fn contains(&self, coords: &[f64]) -> bool {
        debug_assert_eq!(coords.len(), self.dims());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(coords)
            .all(|((l, h), x)| *l <= *x && *x <= *h)
    }

    /// Whether two rectangles overlap (closed bounds).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// Intersection of two rectangles, `None` if they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        let lo: Vec<f64> = self
            .lo
            .iter()
            .zip(other.lo.iter())
            .map(|(a, b)| a.max(*b))
            .collect();
        let hi: Vec<f64> = self
            .hi
            .iter()
            .zip(other.hi.iter())
            .map(|(a, b)| a.min(*b))
            .collect();
        Some(Rect {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// Volume of the rectangle.
    pub fn volume(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Rect::new(vec![0.0], vec![1.0]).is_ok());
        assert!(Rect::new(vec![0.5], vec![0.4]).is_err());
        assert!(Rect::new(vec![0.0, 0.0], vec![1.0]).is_err());
        assert!(Rect::new(Vec::<f64>::new(), Vec::<f64>::new()).is_err());
        assert!(Rect::new(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn contains_closed_bounds() {
        let r = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]).unwrap();
        assert!(r.contains(&[0.2, 0.8]));
        assert!(r.contains(&[0.5, 0.5]));
        assert!(!r.contains(&[0.1, 0.5]));
        assert!(!r.contains(&[0.5, 0.9]));
    }

    #[test]
    fn intersection_logic() {
        let a = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let b = Rect::new(vec![0.4, 0.4], vec![1.0, 1.0]).unwrap();
        let c = Rect::new(vec![0.6, 0.6], vec![1.0, 1.0]).unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.lo(), &[0.4, 0.4]);
        assert_eq!(i.hi(), &[0.5, 0.5]);
        assert!(a.intersection(&c).is_none());
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::new(vec![0.0], vec![0.5]).unwrap();
        let b = Rect::new(vec![0.5], vec![1.0]).unwrap();
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b).unwrap().volume(), 0.0);
    }

    #[test]
    fn unit_volume() {
        assert_eq!(Rect::unit(3).volume(), 1.0);
        let r = Rect::new(vec![0.0, 0.0], vec![0.5, 0.25]).unwrap();
        assert!((r.volume() - 0.125).abs() < 1e-12);
    }
}
