//! A small FxHash-style hasher for integer-keyed hash maps.
//!
//! The influence lists of the grid and the query tables of the engines are
//! hash tables keyed by dense integer ids, and they sit on the hot path of
//! every processing cycle. SipHash (the std default) is needlessly slow for
//! this use; the classic Fx multiply-rotate hash is the standard choice in
//! this situation. Re-implemented here (~40 lines of std-only code) instead
//! of adding an external dependency — see DESIGN.md, dependency policy.
//!
//! Not DoS-resistant; keys are internally generated ids, never attacker
//! controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Seed from the FxHash scheme (64-bit golden-ratio constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher, byte-order independent for integer writes.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: fold 8 bytes at a time.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
            self.add_to_hash(rem.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast integer hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast integer hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Dense ids must not collide in a trivially bad way.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            seen.insert(hash_one(i));
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_slices_with_different_lengths_differ() {
        assert_ne!(hash_one([0u8; 3]), hash_one([0u8; 4]));
    }
}
