//! Workspace error type.

use std::fmt;

use crate::ids::{QueryId, TupleId};

/// Convenience alias used across the workspace.
pub type Result<T, E = TkmError> = std::result::Result<T, E>;

/// Errors produced by the top-k monitoring workspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TkmError {
    /// A coordinate slice / function / grid dimensionality mismatch.
    DimensionMismatch {
        /// Dimensionality the component was configured with.
        expected: usize,
        /// Dimensionality that was supplied.
        got: usize,
    },
    /// A parameter failed validation (message explains which and why).
    InvalidParameter(String),
    /// The query id is not registered.
    UnknownQuery(QueryId),
    /// The query id is already registered.
    DuplicateQuery(QueryId),
    /// The tuple id is not present in the store.
    UnknownTuple(TupleId),
    /// The tuple id is already present in the store.
    DuplicateTuple(TupleId),
    /// The operation is not supported by this engine/stream-model
    /// combination (e.g. SMA over explicit-deletion update streams, §7).
    Unsupported(String),
    /// An internal invariant failed (e.g. a worker thread panicked). The
    /// monitor that produced it may hold inconsistent state; callers should
    /// rebuild it rather than continue ticking.
    Internal(String),
}

impl fmt::Display for TkmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TkmError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            TkmError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            TkmError::UnknownQuery(q) => write!(f, "unknown query {q}"),
            TkmError::DuplicateQuery(q) => write!(f, "query {q} already registered"),
            TkmError::UnknownTuple(t) => write!(f, "unknown tuple {t}"),
            TkmError::DuplicateTuple(t) => write!(f, "tuple {t} already present"),
            TkmError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            TkmError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for TkmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TkmError::DimensionMismatch {
            expected: 4,
            got: 2,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 4, got 2");
        assert_eq!(
            TkmError::UnknownQuery(QueryId(3)).to_string(),
            "unknown query q3"
        );
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TkmError::InvalidParameter("x".into()));
    }
}
