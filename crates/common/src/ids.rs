//! Identifier newtypes.
//!
//! `TupleId` is the *arrival sequence number* of a tuple. In both window
//! kinds supported by the paper (count-based and time-based) tuples expire
//! in first-in-first-out order, so the id order is also the expiry order;
//! the skyband dominance test (`tkm-skyband`) relies on this.

use std::fmt;

/// Arrival sequence number of a tuple. Dense and monotonically increasing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TupleId(pub u64);

impl TupleId {
    /// Next id in arrival order.
    #[inline]
    pub fn next(self) -> TupleId {
        TupleId(self.0 + 1)
    }
}

impl fmt::Debug for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifier of a registered continuous query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QueryId(pub u64);

impl fmt::Debug for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Dense per-engine index of a registered query — the *slot* a query
/// occupies in a `QueryRegistry` while it is live.
///
/// Hot-path structures (influence lists, per-query state tables) store
/// these 4-byte indices instead of [`QueryId`]s: a slot resolves to the
/// query's state with a single `Vec` index, where a `QueryId` would need a
/// map lookup. Slots are recycled after a query terminates, so they are
/// only meaningful inside the engine that issued them and only while the
/// query is live; the `QueryId ↔ QuerySlot` translation happens once per
/// register/remove/result call, never per event.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QuerySlot(pub u32);

impl QuerySlot {
    /// The slot's index into dense per-query tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for QuerySlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for QuerySlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Logical timestamp (processing-cycle granularity). Only time-based
/// windows interpret the value; count-based windows ignore it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The timestamp `delta` ticks later.
    #[inline]
    pub fn advance(self, delta: u64) -> Timestamp {
        Timestamp(self.0 + delta)
    }

    /// Saturating difference `self - other`.
    #[inline]
    pub fn since(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_id_order_is_arrival_order() {
        let a = TupleId(3);
        let b = a.next();
        assert!(b > a);
        assert_eq!(b, TupleId(4));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.advance(5), Timestamp(15));
        assert_eq!(Timestamp(15).since(t), 5);
        assert_eq!(t.since(Timestamp(15)), 0, "saturates instead of wrapping");
    }

    #[test]
    fn display_forms() {
        assert_eq!(TupleId(7).to_string(), "t7");
        assert_eq!(QueryId(2).to_string(), "q2");
        assert_eq!(QuerySlot(3).to_string(), "s3");
        assert_eq!(Timestamp(9).to_string(), "@9");
    }

    #[test]
    fn slot_index() {
        assert_eq!(QuerySlot(5).index(), 5);
    }
}
