//! A totally ordered `f64` wrapper.
//!
//! Scores are `f64` values; the engines keep them in `BTreeSet`s, binary
//! heaps and sorted vectors, all of which require `Ord`. `OrderedF64` uses
//! [`f64::total_cmp`] and forbids NaN at construction time in debug builds
//! (a NaN score would make every comparison-based invariant meaningless).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` with a total order (via `f64::total_cmp`).
#[derive(Clone, Copy, Default)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Negative infinity: the identity for "take the maximum score".
    pub const NEG_INFINITY: OrderedF64 = OrderedF64(f64::NEG_INFINITY);
    /// Positive infinity.
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);

    /// Wraps a float. Panics on NaN in debug builds.
    #[inline]
    pub fn new(v: f64) -> OrderedF64 {
        debug_assert!(!v.is_nan(), "scores must not be NaN");
        OrderedF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl From<f64> for OrderedF64 {
    #[inline]
    fn from(v: f64) -> Self {
        OrderedF64::new(v)
    }
}

impl From<OrderedF64> for f64 {
    #[inline]
    fn from(v: OrderedF64) -> Self {
        v.0
    }
}

impl PartialEq for OrderedF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}

impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for OrderedF64 {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        let a = OrderedF64::new(1.0);
        let b = OrderedF64::new(2.0);
        assert!(a < b);
        assert!(OrderedF64::NEG_INFINITY < a);
        assert!(b < OrderedF64::INFINITY);
    }

    #[test]
    fn zero_signs_are_distinguished_consistently() {
        // total_cmp puts -0.0 < +0.0; what matters is that the order is
        // deterministic and Eq/Ord agree.
        let neg = OrderedF64::new(-0.0);
        let pos = OrderedF64::new(0.0);
        assert!(neg < pos);
        assert_ne!(neg, pos);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    #[cfg(debug_assertions)]
    fn nan_rejected_in_debug() {
        let _ = OrderedF64::new(f64::NAN);
    }

    #[test]
    fn sorting_uses_total_order() {
        let mut v = vec![
            OrderedF64::new(3.0),
            OrderedF64::new(-1.0),
            OrderedF64::new(2.0),
        ];
        v.sort();
        let raw: Vec<f64> = v.into_iter().map(OrderedF64::get).collect();
        assert_eq!(raw, vec![-1.0, 2.0, 3.0]);
    }
}
