#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Sliding-window tuple stores.
//!
//! The paper keeps all valid tuples in main memory in a single
//! first-in-first-out list (§4.1): new arrivals append at the tail, expired
//! tuples leave from the head, and this holds for both count-based and
//! time-based windows. This crate provides that storage layer:
//!
//! * [`FlatRing`] — the underlying ring buffer. Coordinates live in one flat
//!   `Vec<f64>` (stride = dimensionality); because tuple ids are dense
//!   arrival sequence numbers, `id → slot` is pure arithmetic and the score
//!   evaluation hot path performs no hashing.
//! * [`CountWindow`] — keeps the `N` most recent tuples.
//! * [`TimeWindow`] — keeps every tuple that arrived within the last `T`
//!   time units.
//! * [`SlabStore`] — the §7 *update stream* model with explicit deletions,
//!   where expiry order is unknown and lookups go through a hash map.

pub mod count;
pub mod ring;
pub mod slab;
pub mod time;

pub use count::CountWindow;
pub use ring::FlatRing;
pub use slab::SlabStore;
pub use time::TimeWindow;

use tkm_common::{Result, Timestamp, TupleId};

/// Random access to the coordinates of valid tuples by id.
///
/// The top-k computation module is generic over this: sliding-window
/// engines resolve ids through the FIFO ring, the update-stream engine
/// through the slab store.
pub trait TupleLookup {
    /// Dimensionality of stored tuples.
    fn dims(&self) -> usize;
    /// Coordinates of a valid tuple, `None` if absent.
    fn coords(&self, id: TupleId) -> Option<&[f64]>;
    /// Number of valid tuples.
    fn len(&self) -> usize;
    /// Whether no tuples are valid.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TupleLookup for Window {
    fn dims(&self) -> usize {
        Window::dims(self)
    }
    fn coords(&self, id: TupleId) -> Option<&[f64]> {
        Window::coords(self, id)
    }
    fn len(&self) -> usize {
        Window::len(self)
    }
}

impl TupleLookup for SlabStore {
    fn dims(&self) -> usize {
        SlabStore::dims(self)
    }
    fn coords(&self, id: TupleId) -> Option<&[f64]> {
        SlabStore::coords(self, id)
    }
    fn len(&self) -> usize {
        SlabStore::len(self)
    }
}

/// Which sliding-window semantics to instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSpec {
    /// Keep the `N` most recent tuples.
    Count(usize),
    /// Keep tuples that arrived within the last `T` ticks (a tuple inserted
    /// at time `t` expires once `now − t ≥ T`).
    Time(u64),
    /// [`WindowSpec::Time`] with a ring-capacity hint: pre-allocates room
    /// for `capacity` tuples (expected arrival rate × duration) so
    /// high-rate streams skip the warm-up regrow-and-copy cascade.
    TimeSized {
        /// Window length `T` in ticks.
        duration: u64,
        /// Tuples to pre-allocate room for.
        capacity: usize,
    },
}

/// A sliding window over the stream — count-based or time-based.
///
/// Both variants expire tuples strictly in arrival order, which the engines
/// (and the skyband reduction) rely on.
#[derive(Debug)]
pub enum Window {
    /// Count-based window.
    Count(CountWindow),
    /// Time-based window.
    Time(TimeWindow),
}

impl Window {
    /// Builds a window from its spec.
    pub fn new(dims: usize, spec: WindowSpec) -> Result<Window> {
        Ok(match spec {
            WindowSpec::Count(n) => Window::Count(CountWindow::new(dims, n)?),
            WindowSpec::Time(t) => Window::Time(TimeWindow::new(dims, t)?),
            WindowSpec::TimeSized { duration, capacity } => {
                Window::Time(TimeWindow::with_capacity(dims, duration, capacity)?)
            }
        })
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        match self {
            Window::Count(w) => w.dims(),
            Window::Time(w) => w.dims(),
        }
    }

    /// Number of currently valid tuples.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Window::Count(w) => w.len(),
            Window::Time(w) => w.len(),
        }
    }

    /// Whether the window holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinates of a valid tuple, `None` if expired or never inserted.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        match self {
            Window::Count(w) => w.coords(id),
            Window::Time(w) => w.coords(id),
        }
    }

    /// Arrival time of a valid tuple.
    #[inline]
    pub fn arrival_time(&self, id: TupleId) -> Option<Timestamp> {
        match self {
            Window::Count(w) => w.arrival_time(id),
            Window::Time(w) => w.arrival_time(id),
        }
    }

    /// Appends a tuple; returns its arrival id.
    pub fn insert(&mut self, coords: &[f64], ts: Timestamp) -> Result<TupleId> {
        match self {
            Window::Count(w) => w.insert(coords, ts),
            Window::Time(w) => w.insert(coords, ts),
        }
    }

    /// Removes every tuple that is no longer valid at `now`, invoking
    /// `on_expire(id, coords)` for each in expiry (arrival) order.
    pub fn drain_expired(&mut self, now: Timestamp, on_expire: impl FnMut(TupleId, &[f64])) {
        match self {
            Window::Count(w) => w.drain_expired(on_expire),
            Window::Time(w) => w.drain_expired(now, on_expire),
        }
    }

    /// Oldest valid tuple id (the next to expire).
    #[inline]
    pub fn oldest(&self) -> Option<TupleId> {
        match self {
            Window::Count(w) => w.oldest(),
            Window::Time(w) => w.oldest(),
        }
    }

    /// Most recently inserted tuple id.
    #[inline]
    pub fn newest(&self) -> Option<TupleId> {
        match self {
            Window::Count(w) => w.newest(),
            Window::Time(w) => w.newest(),
        }
    }

    /// Iterates valid tuples in arrival order.
    pub fn iter(&self) -> ring::RingIter<'_> {
        match self {
            Window::Count(w) => w.iter(),
            Window::Time(w) => w.iter(),
        }
    }

    /// Deep size estimate in bytes (used by the space experiments).
    pub fn space_bytes(&self) -> usize {
        match self {
            Window::Count(w) => w.space_bytes(),
            Window::Time(w) => w.space_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_dispatch_roundtrip() {
        let mut w = Window::new(2, WindowSpec::Count(2)).unwrap();
        let a = w.insert(&[0.1, 0.2], Timestamp(0)).unwrap();
        let b = w.insert(&[0.3, 0.4], Timestamp(0)).unwrap();
        let c = w.insert(&[0.5, 0.6], Timestamp(1)).unwrap();
        let mut expired = Vec::new();
        w.drain_expired(Timestamp(1), |id, coords| {
            expired.push((id, coords.to_vec()));
        });
        assert_eq!(expired, vec![(a, vec![0.1, 0.2])]);
        assert_eq!(w.len(), 2);
        assert_eq!(w.oldest(), Some(b));
        assert_eq!(w.newest(), Some(c));
        assert_eq!(w.coords(a), None);
        assert_eq!(w.coords(c), Some(&[0.5, 0.6][..]));
    }

    #[test]
    fn time_sized_spec_presizes() {
        let w = Window::new(
            2,
            WindowSpec::TimeSized {
                duration: 3,
                capacity: 512,
            },
        )
        .unwrap();
        match &w {
            Window::Time(t) => assert_eq!(t.capacity(), 512),
            Window::Count(_) => panic!("TimeSized must build a time window"),
        }
        assert_eq!(w.dims(), 2);
    }

    #[test]
    fn time_variant_expiry() {
        let mut w = Window::new(1, WindowSpec::Time(2)).unwrap();
        w.insert(&[0.1], Timestamp(0)).unwrap();
        w.insert(&[0.2], Timestamp(1)).unwrap();
        let mut gone = Vec::new();
        w.drain_expired(Timestamp(2), |id, _| gone.push(id));
        assert_eq!(gone, vec![TupleId(0)]);
        assert_eq!(w.len(), 1);
    }
}
