//! Time-based sliding window: tuples younger than `T` ticks are valid.

use crate::ring::{FlatRing, RingIter};
use tkm_common::{Result, Timestamp, TkmError, TupleId, MAX_DIMS};

/// A time-based sliding window: a tuple inserted at time `t` is valid while
/// `now − t < duration`.
///
/// Because arrival timestamps are non-decreasing, expiry is FIFO here too —
/// the property every engine depends on.
#[derive(Debug)]
pub struct TimeWindow {
    ring: FlatRing,
    duration: u64,
}

impl TimeWindow {
    /// Ring slots pre-allocated when no capacity hint is given.
    const DEFAULT_CAPACITY: usize = 64;

    /// Creates a window keeping tuples for `duration` ticks, with a small
    /// default ring. High-rate streams should use
    /// [`TimeWindow::with_capacity`] so the warm-up phase does not pay a
    /// regrow-and-copy per doubling.
    pub fn new(dims: usize, duration: u64) -> Result<TimeWindow> {
        TimeWindow::with_capacity(dims, duration, Self::DEFAULT_CAPACITY)
    }

    /// Creates a window keeping tuples for `duration` ticks with room for
    /// `capacity` tuples before the first reallocation. The natural hint is
    /// `expected arrival rate × (duration + 1)` — a cycle's arrivals are
    /// buffered before its expiries drain — and the ring still grows beyond
    /// it if the stream bursts higher.
    pub fn with_capacity(dims: usize, duration: u64, capacity: usize) -> Result<TimeWindow> {
        if duration == 0 {
            return Err(TkmError::InvalidParameter(
                "TimeWindow: duration must be positive".into(),
            ));
        }
        Ok(TimeWindow {
            ring: FlatRing::new(dims, capacity.max(1))?,
            duration,
        })
    }

    /// Window length `T` in ticks.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Tuples the ring can hold before the next reallocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        self.ring.dims()
    }

    /// Number of currently stored tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Coordinates of a valid tuple.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        self.ring.coords(id)
    }

    /// Arrival time of a valid tuple.
    #[inline]
    pub fn arrival_time(&self, id: TupleId) -> Option<Timestamp> {
        self.ring.arrival_time(id)
    }

    /// Appends a tuple; returns its arrival id. Timestamps must be
    /// non-decreasing across inserts.
    pub fn insert(&mut self, coords: &[f64], ts: Timestamp) -> Result<TupleId> {
        self.ring.push(coords, ts)
    }

    /// Evicts every tuple whose age at `now` reaches the duration,
    /// oldest first.
    pub fn drain_expired(&mut self, now: Timestamp, mut on_expire: impl FnMut(TupleId, &[f64])) {
        let mut scratch = [0.0f64; MAX_DIMS];
        let dims = self.ring.dims();
        while let Some(front) = self.ring.front_time() {
            if now.since(front) < self.duration {
                break;
            }
            let Some(id) = self.ring.pop_front_into(&mut scratch) else {
                break; // front_time returned Some, so the ring is non-empty
            };
            on_expire(id, &scratch[..dims]);
        }
    }

    /// Oldest valid tuple id.
    #[inline]
    pub fn oldest(&self) -> Option<TupleId> {
        self.ring.oldest()
    }

    /// Newest valid tuple id.
    #[inline]
    pub fn newest(&self) -> Option<TupleId> {
        self.ring.newest()
    }

    /// Iterates valid tuples in arrival order.
    pub fn iter(&self) -> RingIter<'_> {
        self.ring.iter()
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<FlatRing>() + self.ring.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_duration() {
        assert!(TimeWindow::new(2, 0).is_err());
        assert!(TimeWindow::with_capacity(2, 0, 128).is_err());
    }

    #[test]
    fn capacity_hint_presizes_the_ring() {
        let w = TimeWindow::new(2, 5).unwrap();
        assert_eq!(w.capacity(), 64, "default stays small");
        let w = TimeWindow::with_capacity(2, 5, 1000).unwrap();
        assert_eq!(w.capacity(), 1000);
        // A zero hint is clamped rather than rejected.
        let w = TimeWindow::with_capacity(2, 5, 0).unwrap();
        assert!(w.capacity() >= 1);
    }

    #[test]
    fn presized_ring_absorbs_rate_without_growth() {
        // rate × (duration + 1) tuples fit exactly (arrivals land before
        // expiries drain): no reallocation happens while the stream is
        // steady.
        let (rate, duration) = (50usize, 4u64);
        let mut w = TimeWindow::with_capacity(1, duration, rate * (duration as usize + 1)).unwrap();
        let cap0 = w.capacity();
        for tick in 0..20u64 {
            for i in 0..rate {
                w.insert(&[i as f64 / rate as f64], Timestamp(tick))
                    .unwrap();
            }
            w.drain_expired(Timestamp(tick), |_, _| {});
        }
        assert_eq!(w.capacity(), cap0, "steady state must not regrow");
    }

    #[test]
    fn grow_path_crosses_several_doublings() {
        // A deliberately tiny hint forces the ring through multiple
        // doublings (4 → 8 → … → 256) while tuples stay addressable.
        let mut w = TimeWindow::with_capacity(2, 1000, 4).unwrap();
        let mut growths = 0;
        let mut cap = w.capacity();
        for i in 0..200u64 {
            let x = (i as f64 / 200.0).clamp(0.0, 1.0);
            let id = w.insert(&[x, 1.0 - x], Timestamp(i)).unwrap();
            assert_eq!(id, TupleId(i));
            if w.capacity() != cap {
                growths += 1;
                cap = w.capacity();
            }
        }
        assert!(growths >= 5, "expected ≥5 doublings, saw {growths}");
        assert_eq!(w.len(), 200);
        for i in 0..200u64 {
            let x = (i as f64 / 200.0).clamp(0.0, 1.0);
            assert_eq!(w.coords(TupleId(i)).unwrap(), &[x, 1.0 - x][..]);
            assert_eq!(w.arrival_time(TupleId(i)), Some(Timestamp(i)));
        }
    }

    #[test]
    fn expiry_by_age() {
        let mut w = TimeWindow::new(1, 3).unwrap();
        w.insert(&[0.0], Timestamp(0)).unwrap();
        w.insert(&[1.0], Timestamp(1)).unwrap();
        w.insert(&[2.0], Timestamp(2)).unwrap();

        let mut gone = Vec::new();
        w.drain_expired(Timestamp(2), |id, _| gone.push(id.0));
        assert!(gone.is_empty(), "age 2 < duration 3, nothing expires");

        w.drain_expired(Timestamp(4), |id, _| gone.push(id.0));
        assert_eq!(gone, vec![0, 1], "ages 4 and 3 have expired");
        assert_eq!(w.len(), 1);
        assert_eq!(w.oldest(), Some(TupleId(2)));
    }

    #[test]
    fn variable_rate_stream() {
        // Bursty arrivals: the window size fluctuates with the rate,
        // which is exactly what distinguishes time from count windows.
        let mut w = TimeWindow::new(2, 10).unwrap();
        for tick in 0..30u64 {
            let burst = if tick % 3 == 0 { 5 } else { 1 };
            for _ in 0..burst {
                w.insert(&[0.5, 0.5], Timestamp(tick)).unwrap();
            }
            w.drain_expired(Timestamp(tick), |_, _| {});
            // All tuples are at most 10 ticks old.
            for (id, _) in w.iter() {
                assert!(tick.saturating_sub(w.arrival_time(id).unwrap().0) < 10);
            }
        }
        assert!(w.len() > 10, "several ticks' worth of tuples stay valid");
    }

    #[test]
    fn whole_window_can_expire() {
        let mut w = TimeWindow::new(1, 2).unwrap();
        w.insert(&[0.1], Timestamp(0)).unwrap();
        w.insert(&[0.2], Timestamp(0)).unwrap();
        let mut count = 0;
        w.drain_expired(Timestamp(100), |_, _| count += 1);
        assert_eq!(count, 2);
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
    }
}
