//! Time-based sliding window: tuples younger than `T` ticks are valid.

use crate::ring::{FlatRing, RingIter};
use tkm_common::{Result, Timestamp, TkmError, TupleId, MAX_DIMS};

/// A time-based sliding window: a tuple inserted at time `t` is valid while
/// `now − t < duration`.
///
/// Because arrival timestamps are non-decreasing, expiry is FIFO here too —
/// the property every engine depends on.
#[derive(Debug)]
pub struct TimeWindow {
    ring: FlatRing,
    duration: u64,
}

impl TimeWindow {
    /// Creates a window keeping tuples for `duration` ticks.
    pub fn new(dims: usize, duration: u64) -> Result<TimeWindow> {
        if duration == 0 {
            return Err(TkmError::InvalidParameter(
                "TimeWindow: duration must be positive".into(),
            ));
        }
        Ok(TimeWindow {
            ring: FlatRing::new(dims, 64)?,
            duration,
        })
    }

    /// Window length `T` in ticks.
    #[inline]
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        self.ring.dims()
    }

    /// Number of currently stored tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Coordinates of a valid tuple.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        self.ring.coords(id)
    }

    /// Arrival time of a valid tuple.
    #[inline]
    pub fn arrival_time(&self, id: TupleId) -> Option<Timestamp> {
        self.ring.arrival_time(id)
    }

    /// Appends a tuple; returns its arrival id. Timestamps must be
    /// non-decreasing across inserts.
    pub fn insert(&mut self, coords: &[f64], ts: Timestamp) -> Result<TupleId> {
        self.ring.push(coords, ts)
    }

    /// Evicts every tuple whose age at `now` reaches the duration,
    /// oldest first.
    pub fn drain_expired(&mut self, now: Timestamp, mut on_expire: impl FnMut(TupleId, &[f64])) {
        let mut scratch = [0.0f64; MAX_DIMS];
        let dims = self.ring.dims();
        while let Some(front) = self.ring.front_time() {
            if now.since(front) < self.duration {
                break;
            }
            let id = self
                .ring
                .pop_front_into(&mut scratch)
                .expect("front_time implies non-empty");
            on_expire(id, &scratch[..dims]);
        }
    }

    /// Oldest valid tuple id.
    #[inline]
    pub fn oldest(&self) -> Option<TupleId> {
        self.ring.oldest()
    }

    /// Newest valid tuple id.
    #[inline]
    pub fn newest(&self) -> Option<TupleId> {
        self.ring.newest()
    }

    /// Iterates valid tuples in arrival order.
    pub fn iter(&self) -> RingIter<'_> {
        self.ring.iter()
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<FlatRing>() + self.ring.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_duration() {
        assert!(TimeWindow::new(2, 0).is_err());
    }

    #[test]
    fn expiry_by_age() {
        let mut w = TimeWindow::new(1, 3).unwrap();
        w.insert(&[0.0], Timestamp(0)).unwrap();
        w.insert(&[1.0], Timestamp(1)).unwrap();
        w.insert(&[2.0], Timestamp(2)).unwrap();

        let mut gone = Vec::new();
        w.drain_expired(Timestamp(2), |id, _| gone.push(id.0));
        assert!(gone.is_empty(), "age 2 < duration 3, nothing expires");

        w.drain_expired(Timestamp(4), |id, _| gone.push(id.0));
        assert_eq!(gone, vec![0, 1], "ages 4 and 3 have expired");
        assert_eq!(w.len(), 1);
        assert_eq!(w.oldest(), Some(TupleId(2)));
    }

    #[test]
    fn variable_rate_stream() {
        // Bursty arrivals: the window size fluctuates with the rate,
        // which is exactly what distinguishes time from count windows.
        let mut w = TimeWindow::new(2, 10).unwrap();
        for tick in 0..30u64 {
            let burst = if tick % 3 == 0 { 5 } else { 1 };
            for _ in 0..burst {
                w.insert(&[0.5, 0.5], Timestamp(tick)).unwrap();
            }
            w.drain_expired(Timestamp(tick), |_, _| {});
            // All tuples are at most 10 ticks old.
            for (id, _) in w.iter() {
                assert!(tick.saturating_sub(w.arrival_time(id).unwrap().0) < 10);
            }
        }
        assert!(w.len() > 10, "several ticks' worth of tuples stay valid");
    }

    #[test]
    fn whole_window_can_expire() {
        let mut w = TimeWindow::new(1, 2).unwrap();
        w.insert(&[0.1], Timestamp(0)).unwrap();
        w.insert(&[0.2], Timestamp(0)).unwrap();
        let mut count = 0;
        w.drain_expired(Timestamp(100), |_, _| count += 1);
        assert_eq!(count, 2);
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
    }
}
