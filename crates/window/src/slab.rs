//! Tuple store for the §7 *update stream* model.
//!
//! When the stream carries explicit deletions, tuples no longer expire in
//! FIFO order, so the ring layout does not apply: tuples live in a slab
//! (free-list recycled slots) and are located through a hash map. The paper
//! notes exactly this change — "the point lists of the cells are implemented
//! as hash-tables for supporting random insertions/deletions in constant
//! expected time" — and the same applies to the backing store.

use tkm_common::{FxHashMap, Result, TkmError, TupleId, MAX_DIMS};

/// Explicit-deletion tuple store (slab + id→slot hash map).
#[derive(Debug)]
pub struct SlabStore {
    dims: usize,
    /// Coordinate storage, one `dims`-stride slot per tuple.
    buf: Vec<f64>,
    /// Recyclable slots.
    free: Vec<usize>,
    /// Valid tuples.
    slots: FxHashMap<TupleId, usize>,
    /// Next id to assign.
    next_id: u64,
}

impl SlabStore {
    /// Creates an empty store for `dims`-dimensional tuples.
    pub fn new(dims: usize) -> Result<SlabStore> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "SlabStore: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        Ok(SlabStore {
            dims,
            buf: Vec::new(),
            free: Vec::new(),
            slots: FxHashMap::default(),
            next_id: 0,
        })
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of valid tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Inserts a tuple, assigning the next arrival id.
    pub fn insert(&mut self, coords: &[f64]) -> Result<TupleId> {
        if coords.len() != self.dims {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.buf[slot * self.dims..(slot + 1) * self.dims].copy_from_slice(coords);
                slot
            }
            None => {
                let slot = self.buf.len() / self.dims;
                self.buf.extend_from_slice(coords);
                slot
            }
        };
        let id = TupleId(self.next_id);
        self.next_id += 1;
        self.slots.insert(id, slot);
        Ok(id)
    }

    /// Deletes a tuple by id, returning its coordinates via `scratch`
    /// (length ≥ dims).
    pub fn remove_into(&mut self, id: TupleId, scratch: &mut [f64]) -> Result<()> {
        let slot = self.slots.remove(&id).ok_or(TkmError::UnknownTuple(id))?;
        scratch[..self.dims].copy_from_slice(&self.buf[slot * self.dims..(slot + 1) * self.dims]);
        self.free.push(slot);
        Ok(())
    }

    /// Coordinates of a valid tuple.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        let slot = *self.slots.get(&id)?;
        Some(&self.buf[slot * self.dims..(slot + 1) * self.dims])
    }

    /// Whether `id` is valid.
    #[inline]
    pub fn contains(&self, id: TupleId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Iterates valid tuples in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &[f64])> + '_ {
        self.slots
            .iter()
            .map(move |(id, slot)| (*id, &self.buf[slot * self.dims..(slot + 1) * self.dims]))
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buf.capacity() * std::mem::size_of::<f64>()
            + self.free.capacity() * std::mem::size_of::<usize>()
            + self.slots.capacity() * (std::mem::size_of::<(TupleId, usize)>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = SlabStore::new(2).unwrap();
        let a = s.insert(&[0.1, 0.2]).unwrap();
        let b = s.insert(&[0.3, 0.4]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.coords(a), Some(&[0.1, 0.2][..]));

        let mut scratch = [0.0; 2];
        s.remove_into(a, &mut scratch).unwrap();
        assert_eq!(scratch, [0.1, 0.2]);
        assert!(!s.contains(a));
        assert!(s.contains(b));
        assert!(matches!(
            s.remove_into(a, &mut scratch),
            Err(TkmError::UnknownTuple(_))
        ));
    }

    #[test]
    fn slots_are_recycled_but_ids_are_not() {
        let mut s = SlabStore::new(1).unwrap();
        let a = s.insert(&[1.0]).unwrap();
        let mut scratch = [0.0];
        s.remove_into(a, &mut scratch).unwrap();
        let b = s.insert(&[2.0]).unwrap();
        assert_ne!(a, b, "ids are never reused");
        assert_eq!(s.buf.len(), 1, "slot was recycled");
        assert_eq!(s.coords(b), Some(&[2.0][..]));
    }

    #[test]
    fn out_of_order_deletions() {
        let mut s = SlabStore::new(1).unwrap();
        let ids: Vec<TupleId> = (0..10).map(|i| s.insert(&[i as f64]).unwrap()).collect();
        let mut scratch = [0.0];
        // Delete in arbitrary order — the very thing FIFO windows cannot do.
        for &i in &[5usize, 0, 9, 3] {
            s.remove_into(ids[i], &mut scratch).unwrap();
            assert_eq!(scratch[0], i as f64);
        }
        assert_eq!(s.len(), 6);
        let mut remaining: Vec<f64> = s.iter().map(|(_, c)| c[0]).collect();
        remaining.sort_by(f64::total_cmp);
        assert_eq!(remaining, vec![1.0, 2.0, 4.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn dimension_checks() {
        assert!(SlabStore::new(0).is_err());
        let mut s = SlabStore::new(2).unwrap();
        assert!(s.insert(&[0.1]).is_err());
    }
}
