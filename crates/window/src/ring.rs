//! The flat coordinate ring underlying both window kinds.

use tkm_common::{Result, Timestamp, TkmError, TupleId, MAX_DIMS};

/// A FIFO ring of d-dimensional tuples stored in one flat `Vec<f64>`.
///
/// Each slot holds `dims` consecutive coordinates plus a parallel arrival
/// timestamp. Tuple ids are dense arrival sequence numbers, so locating a
/// tuple is `slot = (head_slot + (id − head_id)) % capacity` — no hashing.
/// The ring grows geometrically when full (the count window sizes it up
/// front; the time window relies on growth).
#[derive(Debug)]
pub struct FlatRing {
    dims: usize,
    /// Coordinate storage, `capacity * dims` floats.
    buf: Vec<f64>,
    /// Arrival timestamps, `capacity` entries.
    times: Vec<u64>,
    /// Number of slots (not floats).
    capacity: usize,
    /// Slot index of the oldest tuple.
    head_slot: usize,
    /// Number of valid tuples.
    len: usize,
    /// Id of the oldest tuple (`head_id + len` = next id to assign).
    head_id: u64,
}

impl FlatRing {
    /// Creates a ring for `dims`-dimensional tuples with room for
    /// `initial_slots` tuples before the first reallocation.
    pub fn new(dims: usize, initial_slots: usize) -> Result<FlatRing> {
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "FlatRing: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        let capacity = initial_slots.max(1);
        Ok(FlatRing {
            dims,
            buf: vec![0.0; capacity * dims],
            times: vec![0; capacity],
            capacity,
            head_slot: 0,
            len: 0,
            head_id: 0,
        })
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of slots available before the next reallocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Id of the oldest valid tuple.
    #[inline]
    pub fn oldest(&self) -> Option<TupleId> {
        (self.len > 0).then_some(TupleId(self.head_id))
    }

    /// Id of the newest valid tuple.
    #[inline]
    pub fn newest(&self) -> Option<TupleId> {
        (self.len > 0).then_some(TupleId(self.head_id + self.len as u64 - 1))
    }

    /// Slot index for a valid id, `None` if the id is outside the window.
    #[inline]
    fn slot_of(&self, id: TupleId) -> Option<usize> {
        let offset = id.0.checked_sub(self.head_id)?;
        if (offset as usize) < self.len {
            Some((self.head_slot + offset as usize) % self.capacity)
        } else {
            None
        }
    }

    /// Coordinates of a valid tuple.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        let slot = self.slot_of(id)?;
        Some(&self.buf[slot * self.dims..(slot + 1) * self.dims])
    }

    /// Arrival time of a valid tuple.
    #[inline]
    pub fn arrival_time(&self, id: TupleId) -> Option<Timestamp> {
        Some(Timestamp(self.times[self.slot_of(id)?]))
    }

    /// Appends a tuple and returns its id. Timestamps must be
    /// non-decreasing in arrival order (FIFO expiry depends on it).
    pub fn push(&mut self, coords: &[f64], ts: Timestamp) -> Result<TupleId> {
        if coords.len() != self.dims {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims,
                got: coords.len(),
            });
        }
        debug_assert!(
            self.len == 0
                || self
                    .arrival_time(self.newest().expect("non-empty"))
                    .expect("newest is valid")
                    .0
                    <= ts.0,
            "arrival timestamps must be non-decreasing"
        );
        if self.len == self.capacity {
            self.grow();
        }
        let slot = (self.head_slot + self.len) % self.capacity;
        self.buf[slot * self.dims..(slot + 1) * self.dims].copy_from_slice(coords);
        self.times[slot] = ts.0;
        let id = TupleId(self.head_id + self.len as u64);
        self.len += 1;
        Ok(id)
    }

    /// Removes the oldest tuple, copying its coordinates into `scratch`
    /// (which must have length ≥ dims) and returning its id.
    pub fn pop_front_into(&mut self, scratch: &mut [f64]) -> Option<TupleId> {
        if self.len == 0 {
            return None;
        }
        let slot = self.head_slot;
        scratch[..self.dims].copy_from_slice(&self.buf[slot * self.dims..(slot + 1) * self.dims]);
        let id = TupleId(self.head_id);
        self.head_slot = (self.head_slot + 1) % self.capacity;
        self.head_id += 1;
        self.len -= 1;
        if self.len == 0 {
            self.head_slot = 0;
        }
        Some(id)
    }

    /// Arrival time of the oldest tuple.
    #[inline]
    pub fn front_time(&self) -> Option<Timestamp> {
        (self.len > 0).then(|| Timestamp(self.times[self.head_slot]))
    }

    /// Doubles capacity, re-linearising so the head moves to slot 0.
    fn grow(&mut self) {
        let new_capacity = (self.capacity * 2).max(4);
        let mut buf = vec![0.0; new_capacity * self.dims];
        let mut times = vec![0; new_capacity];
        for i in 0..self.len {
            let slot = (self.head_slot + i) % self.capacity;
            buf[i * self.dims..(i + 1) * self.dims]
                .copy_from_slice(&self.buf[slot * self.dims..(slot + 1) * self.dims]);
            times[i] = self.times[slot];
        }
        self.buf = buf;
        self.times = times;
        self.capacity = new_capacity;
        self.head_slot = 0;
    }

    /// Iterates valid tuples in arrival order.
    pub fn iter(&self) -> RingIter<'_> {
        RingIter {
            ring: self,
            offset: 0,
        }
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.buf.capacity() * std::mem::size_of::<f64>()
            + self.times.capacity() * std::mem::size_of::<u64>()
    }
}

/// Arrival-order iterator over `(id, coords)` pairs of a [`FlatRing`].
pub struct RingIter<'a> {
    ring: &'a FlatRing,
    offset: usize,
}

impl<'a> Iterator for RingIter<'a> {
    type Item = (TupleId, &'a [f64]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.offset >= self.ring.len {
            return None;
        }
        let id = TupleId(self.ring.head_id + self.offset as u64);
        let slot = (self.ring.head_slot + self.offset) % self.ring.capacity;
        self.offset += 1;
        Some((
            id,
            &self.ring.buf[slot * self.ring.dims..(slot + 1) * self.ring.dims],
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.ring.len - self.offset;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RingIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_dims() {
        assert!(FlatRing::new(0, 4).is_err());
        assert!(FlatRing::new(MAX_DIMS + 1, 4).is_err());
        let mut r = FlatRing::new(2, 4).unwrap();
        assert!(r.push(&[0.0], Timestamp(0)).is_err());
    }

    #[test]
    fn push_pop_fifo() {
        let mut r = FlatRing::new(2, 2).unwrap();
        let a = r.push(&[0.1, 0.2], Timestamp(0)).unwrap();
        let b = r.push(&[0.3, 0.4], Timestamp(1)).unwrap();
        assert_eq!(a, TupleId(0));
        assert_eq!(b, TupleId(1));
        let mut scratch = [0.0; 2];
        assert_eq!(r.pop_front_into(&mut scratch), Some(a));
        assert_eq!(scratch, [0.1, 0.2]);
        assert_eq!(r.coords(a), None, "popped tuple is gone");
        assert_eq!(r.coords(b), Some(&[0.3, 0.4][..]));
        assert_eq!(r.pop_front_into(&mut scratch), Some(b));
        assert_eq!(r.pop_front_into(&mut scratch), None);
    }

    #[test]
    fn growth_preserves_contents_and_wraps() {
        let mut r = FlatRing::new(3, 2).unwrap();
        let mut scratch = [0.0; 3];
        // Interleave pushes and pops so head_slot is non-zero when growth
        // happens (exercises the re-linearisation).
        for i in 0..50u64 {
            r.push(&[i as f64, 0.5, 1.0 - i as f64 / 100.0], Timestamp(i))
                .unwrap();
            if i % 3 == 0 {
                r.pop_front_into(&mut scratch);
            }
        }
        let items: Vec<(TupleId, Vec<f64>)> = r.iter().map(|(id, c)| (id, c.to_vec())).collect();
        assert_eq!(items.len(), r.len());
        for (id, coords) in items {
            assert_eq!(coords[0], id.0 as f64);
            assert_eq!(r.coords(id).unwrap(), &coords[..]);
            assert_eq!(r.arrival_time(id), Some(Timestamp(id.0)));
        }
    }

    #[test]
    fn lookup_outside_window() {
        let mut r = FlatRing::new(1, 2).unwrap();
        r.push(&[0.5], Timestamp(0)).unwrap();
        assert_eq!(r.coords(TupleId(5)), None);
        let mut scratch = [0.0];
        r.pop_front_into(&mut scratch);
        assert_eq!(r.coords(TupleId(0)), None);
    }

    proptest! {
        #[test]
        fn ids_are_dense_and_fifo(pushes in 1usize..200, pop_every in 1usize..5) {
            let mut r = FlatRing::new(2, 1).unwrap();
            let mut scratch = [0.0; 2];
            let mut popped = Vec::new();
            for i in 0..pushes {
                let id = r.push(&[i as f64, 0.0], Timestamp(i as u64)).unwrap();
                prop_assert_eq!(id, TupleId(i as u64));
                if i % pop_every == 0 {
                    if let Some(p) = r.pop_front_into(&mut scratch) {
                        popped.push(p.0);
                    }
                }
            }
            // Popped ids are exactly a prefix of the id sequence.
            let expected: Vec<u64> = (0..popped.len() as u64).collect();
            prop_assert_eq!(popped, expected);
            // Remaining ids are contiguous.
            let remaining: Vec<u64> = r.iter().map(|(id, _)| id.0).collect();
            for pair in remaining.windows(2) {
                prop_assert_eq!(pair[1], pair[0] + 1);
            }
        }
    }
}
