//! Count-based sliding window: the `N` most recent tuples are valid.

use crate::ring::{FlatRing, RingIter};
use tkm_common::{Result, Timestamp, TkmError, TupleId, MAX_DIMS};

/// A count-based sliding window holding the `capacity` most recent tuples.
///
/// Arrivals are buffered without immediate eviction so that a processing
/// cycle can (as the paper's maintenance modules require) handle the arrival
/// set `P_ins` *before* the expiry set `P_del`; [`CountWindow::drain_expired`]
/// then evicts the overflow in FIFO order.
#[derive(Debug)]
pub struct CountWindow {
    ring: FlatRing,
    capacity: usize,
}

impl CountWindow {
    /// Creates a window keeping the `capacity` most recent tuples.
    pub fn new(dims: usize, capacity: usize) -> Result<CountWindow> {
        if capacity == 0 {
            return Err(TkmError::InvalidParameter(
                "CountWindow: capacity must be positive".into(),
            ));
        }
        // Headroom above `capacity` so that a cycle's arrivals fit before
        // the paired drain; the ring still grows if a cycle exceeds it.
        let initial = capacity + (capacity / 8).max(16);
        Ok(CountWindow {
            ring: FlatRing::new(dims, initial)?,
            capacity,
        })
    }

    /// Window capacity `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dimensionality of stored tuples.
    #[inline]
    pub fn dims(&self) -> usize {
        self.ring.dims()
    }

    /// Number of currently stored tuples (may transiently exceed capacity
    /// between `insert` and `drain_expired`).
    #[inline]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Coordinates of a valid tuple.
    #[inline]
    pub fn coords(&self, id: TupleId) -> Option<&[f64]> {
        self.ring.coords(id)
    }

    /// Arrival time of a valid tuple.
    #[inline]
    pub fn arrival_time(&self, id: TupleId) -> Option<Timestamp> {
        self.ring.arrival_time(id)
    }

    /// Appends a tuple; returns its arrival id.
    pub fn insert(&mut self, coords: &[f64], ts: Timestamp) -> Result<TupleId> {
        self.ring.push(coords, ts)
    }

    /// Evicts tuples beyond the capacity, oldest first.
    pub fn drain_expired(&mut self, mut on_expire: impl FnMut(TupleId, &[f64])) {
        let mut scratch = [0.0f64; MAX_DIMS];
        let dims = self.ring.dims();
        while self.ring.len() > self.capacity {
            let Some(id) = self.ring.pop_front_into(&mut scratch) else {
                break; // len > capacity >= 1, so the ring cannot be empty
            };
            on_expire(id, &scratch[..dims]);
        }
    }

    /// Oldest valid tuple id.
    #[inline]
    pub fn oldest(&self) -> Option<TupleId> {
        self.ring.oldest()
    }

    /// Newest valid tuple id.
    #[inline]
    pub fn newest(&self) -> Option<TupleId> {
        self.ring.newest()
    }

    /// Iterates valid tuples in arrival order.
    pub fn iter(&self) -> RingIter<'_> {
        self.ring.iter()
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() - std::mem::size_of::<FlatRing>() + self.ring.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_capacity() {
        assert!(CountWindow::new(2, 0).is_err());
    }

    #[test]
    fn keeps_most_recent_n() {
        let mut w = CountWindow::new(1, 3).unwrap();
        for i in 0..5u64 {
            w.insert(&[i as f64], Timestamp(i)).unwrap();
        }
        let mut expired = Vec::new();
        w.drain_expired(|id, c| expired.push((id.0, c[0])));
        assert_eq!(expired, vec![(0, 0.0), (1, 1.0)]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.oldest(), Some(TupleId(2)));
        assert_eq!(w.newest(), Some(TupleId(4)));
    }

    #[test]
    fn steady_state_one_in_one_out() {
        let mut w = CountWindow::new(2, 100).unwrap();
        for i in 0..100u64 {
            w.insert(&[0.5, 0.5], Timestamp(i)).unwrap();
        }
        for tick in 100..200u64 {
            w.insert(&[0.1, 0.9], Timestamp(tick)).unwrap();
            let mut count = 0;
            w.drain_expired(|_, _| count += 1);
            assert_eq!(count, 1);
            assert_eq!(w.len(), 100);
        }
    }

    #[test]
    fn drain_noop_when_under_capacity() {
        let mut w = CountWindow::new(1, 10).unwrap();
        w.insert(&[0.3], Timestamp(0)).unwrap();
        let mut count = 0;
        w.drain_expired(|_, _| count += 1);
        assert_eq!(count, 0);
        assert_eq!(w.len(), 1);
    }
}
