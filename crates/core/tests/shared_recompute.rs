//! Differential suite for the tiered recomputation path.
//!
//! The engines under test tier their fallback work: skyband refill first
//! (TMA's default), then one *shared* grid traversal per monotonicity
//! group when several queries recompute in the same tick, then solo
//! recomputation. Every tier must be invisible in the results: batched,
//! per-query (batching disabled) and sharded configurations all have to
//! report exactly the brute-force oracle's answer on every tick of every
//! stream — under query churn, heavy score ties, count and time windows,
//! and synchronized expiry storms that drain the refill bands.
//!
//! The deterministic `storm_*` tests double as the proof that batching
//! actually engages (`recompute_groups < recompute_queries`): correctness
//! alone would also be satisfied by never grouping anything.

use tkm_common::{QueryId, Rect, ScoreFn, Scored, Timestamp};
use tkm_core::engine::ContinuousTopK;
use tkm_core::oracle::OracleMonitor;
use tkm_core::parallel::{SharedSmaMonitor, SharedTmaMonitor};
use tkm_core::query::Query;
use tkm_core::sma::SmaMonitor;
use tkm_core::tma::{GridSpec, TmaMonitor};
use tkm_window::WindowSpec;

const DIMS: usize = 2;
const GRID: GridSpec = GridSpec::PerDim(6);

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// `n` arrivals snapped to a `(lattice+1)`-point-per-axis lattice, so
/// score ties (including ties at the k-th position) are common.
fn lattice_stream(state: &mut u64, n: usize, lattice: u64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n * DIMS);
    for _ in 0..n * DIMS {
        out.push((lcg(state) % (lattice + 1)) as f64 / lattice as f64);
    }
    out
}

/// Arrivals of tick `t` under the recompute-storm pattern: a large wave
/// every `period` ticks, a trickle in between, and a silent tick before
/// each wave. Under a short time window the wave expires en masse a few
/// ticks later, draining every query's band in the same cycle.
fn storm_tick_size(t: u64, period: u64, wave: usize, trickle: usize) -> usize {
    match t % period {
        0 => wave,
        p if p == period - 1 => 0,
        _ => trickle,
    }
}

fn query_set() -> Vec<(QueryId, Query)> {
    let constraint = Rect::new(vec![0.2, 0.2], vec![0.8, 0.8]).unwrap();
    vec![
        (
            QueryId(0),
            Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap(),
        ),
        (
            QueryId(1),
            Query::top_k(ScoreFn::linear(vec![2.0, 1.0]).unwrap(), 1).unwrap(),
        ),
        (
            QueryId(2),
            Query::top_k(ScoreFn::linear(vec![0.5, 0.5]).unwrap(), 5).unwrap(),
        ),
        // Product scoring is also increasing per axis: same monotonicity
        // signature as the linear queries, so it can share their traversal.
        (
            QueryId(3),
            Query::top_k(ScoreFn::product(vec![0.1, 0.1]).unwrap(), 2).unwrap(),
        ),
        // Different signature (decreasing on axis 1): its own group.
        (
            QueryId(4),
            Query::top_k(ScoreFn::linear(vec![1.0, -1.0]).unwrap(), 3).unwrap(),
        ),
        // Constrained: always recomputes solo.
        (
            QueryId(5),
            Query::constrained(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2, constraint).unwrap(),
        ),
    ]
}

struct Fleet {
    engines: Vec<(&'static str, Box<dyn ContinuousTopK>)>,
    oracle: OracleMonitor,
}

impl Fleet {
    /// The oracle plus TMA and SMA in batched/per-query × S∈{1,3}
    /// configurations (S=1 runs the identical maintenance code inline; S=3
    /// replays the same events from three shards).
    fn new(window: WindowSpec) -> Fleet {
        let mut engines: Vec<(&'static str, Box<dyn ContinuousTopK>)> = Vec::new();
        engines.push((
            "tma-batched-s1",
            Box::new(SharedTmaMonitor::new(DIMS, window, GRID, 1).unwrap()),
        ));
        let mut t = SharedTmaMonitor::new(DIMS, window, GRID, 1).unwrap();
        t.set_batched_recompute(false);
        engines.push(("tma-per-query-s1", Box::new(t)));
        engines.push((
            "tma-batched-s3",
            Box::new(SharedTmaMonitor::new(DIMS, window, GRID, 3).unwrap()),
        ));
        engines.push((
            "sma-batched-s1",
            Box::new(SharedSmaMonitor::new(DIMS, window, GRID, 1).unwrap()),
        ));
        let mut s = SharedSmaMonitor::new(DIMS, window, GRID, 1).unwrap();
        s.set_batched_recompute(false);
        engines.push(("sma-per-query-s1", Box::new(s)));
        engines.push((
            "sma-batched-s3",
            Box::new(SharedSmaMonitor::new(DIMS, window, GRID, 3).unwrap()),
        ));
        Fleet {
            engines,
            oracle: OracleMonitor::new(DIMS, window).unwrap(),
        }
    }

    fn register(&mut self, id: QueryId, q: &Query) {
        self.oracle.register_query(id, q.clone()).unwrap();
        for (name, e) in &mut self.engines {
            e.register_query(id, q.clone())
                .unwrap_or_else(|err| panic!("{name}: register {id}: {err}"));
        }
    }

    fn remove(&mut self, id: QueryId) {
        self.oracle.remove_query(id).unwrap();
        for (_, e) in &mut self.engines {
            e.remove_query(id).unwrap();
        }
    }

    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) {
        self.oracle.tick(now, arrivals).unwrap();
        for (name, e) in &mut self.engines {
            e.tick(now, arrivals)
                .unwrap_or_else(|err| panic!("{name}: tick {now:?}: {err}"));
        }
    }

    fn assert_all_match(&self, live: &[QueryId], tick: u64) {
        for &id in live {
            let want: &[Scored] = self.oracle.result(id).unwrap();
            for (name, e) in &self.engines {
                let got = e.result(id).unwrap();
                assert_eq!(
                    &got[..],
                    want,
                    "{name}: query {id} diverged from oracle at tick {tick}"
                );
            }
        }
    }
}

/// Runs one churn scenario: all engines over the same stream, with two
/// queries terminated a third of the way in and two registered midway,
/// results checked against the oracle every tick.
fn run_differential(window: WindowSpec, seed: u64, ticks: u64, lattice: u64, storm: bool) {
    let mut fleet = Fleet::new(window);
    let mut live: Vec<QueryId> = Vec::new();
    for (id, q) in query_set() {
        fleet.register(id, &q);
        live.push(id);
    }
    let mut state = seed | 1;
    for t in 0..ticks {
        if t == ticks / 3 {
            for id in [QueryId(1), QueryId(3)] {
                fleet.remove(id);
                live.retain(|x| *x != id);
            }
        }
        if t == ticks / 2 {
            let extra = [
                (
                    QueryId(6),
                    Query::top_k(ScoreFn::linear(vec![3.0, 1.0]).unwrap(), 4).unwrap(),
                ),
                (
                    QueryId(7),
                    Query::top_k(ScoreFn::quadratic(vec![1.0, 0.5]).unwrap(), 3).unwrap(),
                ),
            ];
            for (id, q) in extra {
                fleet.register(id, &q);
                live.push(id);
            }
        }
        let n = if storm {
            storm_tick_size(t, 5, 30, 3)
        } else {
            2 + (lcg(&mut state) % 7) as usize
        };
        let arrivals = lattice_stream(&mut state, n, lattice);
        fleet.tick(Timestamp(t), &arrivals);
        fleet.assert_all_match(&live, t);
    }
}

// ---- Deterministic scenarios (the regression seeds of this suite; the
// proptest below explores around them) ----

#[test]
fn churn_count_window_matches_oracle() {
    run_differential(WindowSpec::Count(40), 0x5eed_0001, 36, 9, false);
}

#[test]
fn churn_small_count_window_with_ties() {
    // Window of 12 under k up to 5: results brush against the whole
    // window; lattice 4 forces constant score ties.
    run_differential(WindowSpec::Count(12), 0x5eed_0002, 36, 4, false);
}

#[test]
fn churn_time_window_matches_oracle() {
    run_differential(WindowSpec::Time(3), 0x5eed_0003, 36, 9, false);
}

#[test]
fn storm_time_window_matches_oracle() {
    // Synchronized expiry waves: every query's refill band drains in the
    // same tick, exercising the grouped traversal under ties.
    run_differential(WindowSpec::Time(2), 0x5eed_0004, 40, 4, true);
}

#[test]
fn storm_count_window_matches_oracle() {
    run_differential(WindowSpec::Count(35), 0x5eed_0005, 40, 9, true);
}

// ---- Batching proof: the grouped path must actually engage ----

/// Drives a recompute storm into a plain TMA monitor and checks via the
/// split counters that at least one traversal served several queries —
/// and that results still match the oracle exactly.
#[test]
fn tma_storm_batches_recomputations() {
    let window = WindowSpec::Time(2);
    let mut m = TmaMonitor::new(DIMS, window, GRID).unwrap();
    let mut oracle = OracleMonitor::new(DIMS, window).unwrap();
    // Same-signature queries: all eligible for one shared traversal.
    let qs: Vec<(QueryId, Query)> = (0..8u64)
        .map(|i| {
            let w = vec![1.0 + 0.25 * i as f64, 2.0 - 0.125 * i as f64];
            (
                QueryId(i),
                Query::top_k(ScoreFn::linear(w).unwrap(), 2 + (i as usize % 3)).unwrap(),
            )
        })
        .collect();
    for (id, q) in &qs {
        m.register_query(*id, q.clone()).unwrap();
        oracle.register_query(*id, q.clone()).unwrap();
    }
    let registrations = m.stats().recompute_queries;
    assert_eq!(registrations, 8, "one initial computation per query");

    let mut state = 0xabcd_ef01u64;
    for t in 0..30u64 {
        let n = storm_tick_size(t, 5, 40, 2);
        let arrivals = lattice_stream(&mut state, n, 9);
        m.tick(Timestamp(t), &arrivals).unwrap();
        oracle.tick(Timestamp(t), &arrivals).unwrap();
        for (id, _) in &qs {
            assert_eq!(
                m.result(*id).unwrap(),
                oracle.result(*id).unwrap(),
                "query {id} diverged at tick {t}"
            );
        }
    }
    let s = m.stats();
    let storm_queries = s.recompute_queries - registrations;
    let storm_groups = s.recompute_groups - registrations;
    assert!(
        storm_queries > 0,
        "the storm never forced a recomputation — the scenario is toothless"
    );
    assert!(
        storm_groups < storm_queries,
        "batching never engaged: {storm_groups} traversals for {storm_queries} recomputed queries"
    );
}

/// Same proof for SMA: deficient skybands recomputed in groups.
#[test]
fn sma_storm_batches_recomputations() {
    let window = WindowSpec::Time(2);
    let mut m = SmaMonitor::new(DIMS, window, GRID).unwrap();
    let mut oracle = OracleMonitor::new(DIMS, window).unwrap();
    let qs: Vec<(QueryId, Query)> = (0..8u64)
        .map(|i| {
            let w = vec![0.5 + 0.25 * i as f64, 1.5 - 0.125 * i as f64];
            (
                QueryId(i),
                Query::top_k(ScoreFn::linear(w).unwrap(), 2 + (i as usize % 3)).unwrap(),
            )
        })
        .collect();
    // Populate the window before registering: a skyband started over an
    // empty window keeps its −∞ admission threshold and absorbs any storm
    // (exact but never deficient). A populated window sets the threshold
    // to the real k-th score, so the waves below can drain the band.
    let mut state = 0x1234_5678u64;
    let warmup = lattice_stream(&mut state, 40, 9);
    m.tick(Timestamp(0), &warmup).unwrap();
    oracle.tick(Timestamp(0), &warmup).unwrap();
    for (id, q) in &qs {
        m.register_query(*id, q.clone()).unwrap();
        oracle.register_query(*id, q.clone()).unwrap();
    }
    let registrations = m.stats().recompute_queries;

    for t in 1..30u64 {
        let n = storm_tick_size(t, 5, 40, 2);
        let arrivals = lattice_stream(&mut state, n, 9);
        m.tick(Timestamp(t), &arrivals).unwrap();
        oracle.tick(Timestamp(t), &arrivals).unwrap();
        for (id, _) in &qs {
            assert_eq!(
                m.result(*id).unwrap(),
                oracle.result(*id).unwrap(),
                "query {id} diverged at tick {t}"
            );
        }
    }
    let s = m.stats();
    let storm_queries = s.recompute_queries - registrations;
    let storm_groups = s.recompute_groups - registrations;
    assert!(storm_queries > 0, "the storm never drained a skyband");
    assert!(
        storm_groups < storm_queries,
        "batching never engaged: {storm_groups} traversals for {storm_queries} recomputed queries"
    );
}

// ---- Refill-specific behaviour ----

/// An expiry storm drains the band below `k`, the engine falls back to a
/// from-scratch computation, and the result stays oracle-exact throughout.
#[test]
fn expiry_storm_forces_refill_fallback() {
    let window = WindowSpec::Time(2);
    let mut m = TmaMonitor::new(DIMS, window, GRID).unwrap();
    let mut oracle = OracleMonitor::new(DIMS, window).unwrap();
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 4).unwrap();
    m.register_query(QueryId(0), q.clone()).unwrap();
    oracle.register_query(QueryId(0), q).unwrap();
    let after_registration = m.stats().recompute_queries;

    let mut state = 0x0badu64;
    // Tick 0: a wave fills the band well beyond k (and, past the band-size
    // cap of ~2·k_max, triggers the threshold-tightening traversal — the
    // k_max=7 skyband of 300 distinct-scoring tuples holds ~30 entries).
    let wave = lattice_stream(&mut state, 300, 9999);
    m.tick(Timestamp(0), &wave).unwrap();
    oracle.tick(Timestamp(0), &wave).unwrap();
    assert!(m.band_len(QueryId(0)).unwrap() >= 4);
    assert_eq!(
        m.result(QueryId(0)).unwrap(),
        oracle.result(QueryId(0)).unwrap()
    );
    let after_wave = m.stats().recompute_queries;
    assert!(
        after_wave > after_registration,
        "the registration-time −∞ threshold must be tightened once the band outgrows its cap"
    );

    // Ticks 1-2: a trickle (mostly below the tightened threshold); at
    // tick 2 the wave leaves the Time(2) window en masse and the band
    // collapses below k → fallback recomputation.
    for t in 1..=2u64 {
        let arrivals = lattice_stream(&mut state, 2, 9);
        m.tick(Timestamp(t), &arrivals).unwrap();
        oracle.tick(Timestamp(t), &arrivals).unwrap();
        assert_eq!(
            m.result(QueryId(0)).unwrap(),
            oracle.result(QueryId(0)).unwrap()
        );
    }
    assert!(
        m.stats().recompute_queries > after_wave,
        "the wave expiry must have forced a from-scratch computation"
    );
}

/// Steady state: the refill band absorbs result expiries that the paper's
/// bare TMA would recompute for. The recompute count stays near the
/// registration baseline while results track the oracle.
#[test]
fn refill_absorbs_steady_state_expiries() {
    let mut m = TmaMonitor::new(DIMS, WindowSpec::Count(60), GRID).unwrap();
    let mut oracle = OracleMonitor::new(DIMS, WindowSpec::Count(60)).unwrap();
    let q = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 5).unwrap();
    m.register_query(QueryId(0), q.clone()).unwrap();
    oracle.register_query(QueryId(0), q).unwrap();

    let mut state = 0xfeedu64;
    for t in 0..80u64 {
        let arrivals = lattice_stream(&mut state, 8, 99);
        m.tick(Timestamp(t), &arrivals).unwrap();
        oracle.tick(Timestamp(t), &arrivals).unwrap();
        assert_eq!(
            m.result(QueryId(0)).unwrap(),
            oracle.result(QueryId(0)).unwrap()
        );
    }
    let s = m.stats();
    assert!(
        s.recompute_queries <= 10,
        "refill should make recomputation rare: {} recomputes in 80 ticks",
        s.recompute_queries
    );
}

/// The larger `k_max` band is charged to `space_bytes`: a k=50 query
/// (band of ~70) must account at least its band entries beyond what the
/// same monitor spends on a k=1 query (band of 4).
#[test]
fn kmax_band_space_is_pinned() {
    let build = |k: usize| {
        let mut m = TmaMonitor::new(DIMS, WindowSpec::Count(300), GridSpec::PerDim(6)).unwrap();
        let mut state = 0x77u64;
        for t in 0..6u64 {
            let arrivals = lattice_stream(&mut state, 50, 999);
            m.tick(Timestamp(t), &arrivals).unwrap();
        }
        m.register_query(
            QueryId(0),
            Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), k).unwrap(),
        )
        .unwrap();
        (m.band_len(QueryId(0)).unwrap(), m.space_bytes())
    };
    let (len_small, space_small) = build(1);
    let (len_large, space_large) = build(50);
    assert!(len_small >= 1 && len_small <= tkm_skyband::tuned_kmax(1) + 2);
    assert!(len_large >= 50, "window of 300 must fill a k=50 band");
    // Each band entry costs at least a Scored (16 bytes) plus its
    // dominance counter (4 bytes).
    let entry = std::mem::size_of::<Scored>() + std::mem::size_of::<u32>();
    assert!(
        space_large >= space_small + (len_large - len_small) * entry,
        "k_max band not accounted: k=1 → {space_small} bytes, k=50 → {space_large} bytes"
    );
}

// ---- Property exploration around the deterministic scenarios ----

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Batched ≡ per-query ≡ oracle for TMA and SMA at S ∈ {1, 3},
        /// under churn, ties, storms, and random windows. Seeds committed
        /// in `proptest-regressions/shared_recompute.txt` replay first.
        #[test]
        fn all_configurations_match_oracle(
            seed in any::<u64>(),
            wsel in 0usize..4,
            lsel in 0usize..3,
            storm in any::<bool>(),
        ) {
            let window = match wsel {
                0 => WindowSpec::Count(12),
                1 => WindowSpec::Count(40),
                2 => WindowSpec::Time(2),
                _ => WindowSpec::Time(4),
            };
            let lattice = [4u64, 9, 99][lsel];
            run_differential(window, seed, 24, lattice, storm);
        }
    }
}
