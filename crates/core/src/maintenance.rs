//! Per-query maintenance stages, decoupled from tuple ingest.
//!
//! A [`QueryMaintenance`] value owns everything that is *per-query*: the
//! queries themselves, their result book-keeping (refill skybands for TMA,
//! k-skybands for SMA), the influence lists covering them, and the
//! traversal scratch. It never mutates the shared window or grid — every
//! cycle it *replays* the event lists recorded by [`IngestState::ingest`]
//! against an immutable `&IngestState` view. That is what makes the stage
//! shardable: partition the queries over several `QueryMaintenance` values
//! and run [`QueryMaintenance::apply_events`] on each from its own thread,
//! all reading the same window and grid.
//!
//! [`TmaMaintenance`] and [`SmaMaintenance`] are the paper's two
//! maintenance modules (Figures 9 and 11) restated over event lists; the
//! single-engine monitors [`crate::TmaMonitor`] / [`crate::SmaMonitor`] are
//! thin ingest+maintenance sandwiches, so the sharded and unsharded paths
//! execute literally the same maintenance code.
//!
//! The recomputation path is tiered to kill the worst-tick cliff:
//!
//! 1. **Skyband refill (default TMA configuration).** Each TMA query keeps
//!    a `k_max`-skyband ([`tkm_skyband::tuned_kmax`] entries) instead of a
//!    bare top-k list; its k-prefix *is* the result. Result expiries are
//!    absorbed from the band without touching the grid, and a traversal is
//!    needed only when the band itself drains below `k` — the paper §8
//!    refill idea applied to the grid engines.
//! 2. **Batched shared recomputation.** Queries that do fall back in the
//!    same tick are grouped by per-axis monotonicity (constrained queries
//!    recompute solo) and served by **one**
//!    [`crate::compute::compute_topk_group`] grid traversal per group,
//!    which scans each visited cell block once per member instead of
//!    re-walking the grid per query. A synchronized expiry wave that
//!    forces hundreds of queries to recompute costs one traversal, not
//!    hundreds.
//! 3. **Solo recomputation** remains as the fallback for constrained
//!    queries, singleton groups, and `set_batched_recompute(false)`.
//!
//! The replay loop is built for throughput:
//!
//! * per-query state lives in a dense [`QueryRegistry`] and the influence
//!   lists carry 4-byte [`QuerySlot`]s, so resolving an influence entry is
//!   a `Vec` index instead of a `BTreeMap` probe;
//! * events arrive **grouped by cell** ([`IngestState::arrival_runs`]),
//!   and a run's coordinates are the tail of its cell's coordinate-inline
//!   point block ([`IngestState::arrival_run_coords`]): each cell's
//!   influence list is walked once per tick and the run's packed block
//!   streams through the dim-specialized [`crate::kernel`] scan for every
//!   listed query with that query's state hot in cache (the loop order is
//!   cell → query → tuple) — replay scoring never resolves a tuple
//!   through the window ring and never copies a coordinate;
//! * the traversal heap and frontier live in [`ComputeScratch`], so
//!   steady-state ticks allocate nothing.
//!
//! One deliberate difference from the interleaved originals: an arrival
//! that expires within its own cycle (count window overrun by a burst) is
//! skipped instead of being offered and then removed. Such a tuple is
//! evicted only after every older tuple (windows are FIFO), so skipping it
//! never hides a result candidate, and the recompute-on-expiry path
//! restores exactness for whatever the burst displaced — the differential
//! suite pins sharded and unsharded results to the oracle either way.

use crate::compute::{
    compute_topk, compute_topk_group, ComputeScratch, ComputeStats, GroupMember, GroupOutcome,
    InfluenceUpdate,
};
use crate::influence::{cleanup_from_frontier, cleanup_group_from_frontier, remove_query_walk};
use crate::ingest::IngestState;
use crate::kernel;
use crate::query::Query;
use crate::registry::QueryRegistry;
use crate::result::TopList;
use crate::stats::EngineStats;
use tkm_common::{
    Monotonicity, OrderedF64, QueryId, QuerySlot, Result, ScoreFn, Scored, TkmError, TupleId,
};
use tkm_grid::InfluenceTable;
use tkm_skyband::{tuned_kmax, Skyband};
use tkm_window::Window;

/// One shard's worth of per-query monitoring state.
///
/// Implementations must be [`Send`] so a sharded monitor can drive them
/// from scoped threads; the shared state they read is only borrowed
/// immutably.
pub trait QueryMaintenance: Send {
    /// Label reported by a shared-ingest sharded monitor built on this
    /// maintenance stage.
    const SHARED_LABEL: &'static str;

    /// Creates an empty maintenance stage sized for `shared`'s grid.
    fn new_for(shared: &IngestState) -> Self
    where
        Self: Sized;

    /// Registers a query and computes its initial result against the
    /// current shared window.
    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()>;

    /// Terminates a query, clearing its influence-list entries.
    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()>;

    /// Replays the shared state's last recorded cycle (arrival events, then
    /// expiry events, then recomputation of affected queries) against this
    /// stage's queries.
    fn apply_events(&mut self, shared: &IngestState) -> Result<()>;

    /// The current top-k result of a query, best first.
    fn result(&self, id: QueryId) -> Result<Vec<Scored>>;

    /// One-shot top-k over the shared window, leaving no state behind.
    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>>;

    /// Number of queries maintained by this stage.
    fn query_count(&self) -> usize;

    /// This stage's influence lists (read access, for diagnostics).
    fn influence(&self) -> &InfluenceTable;

    /// Cumulative maintenance-side counters (stream-side counters live in
    /// [`IngestState::stats`]).
    fn stats(&self) -> EngineStats;

    /// Deep size estimate of the per-query state in bytes.
    fn space_bytes(&self) -> usize;

    /// Enables or disables batched shared recomputation (default: on).
    /// With batching off every fallback recomputes solo — the reference
    /// behaviour the differential suite compares the batched path against.
    fn set_batched_recompute(&mut self, on: bool);
}

/// Cap on the member count of one shared recomputation traversal.
///
/// A shared traversal costs O(members × envelope cells): every popped
/// cell runs a retire check and a bound test per still-active member, and
/// the group heap key (the max over active members' bounds) keeps
/// *everyone* active until the group's deepest member is satisfied. A
/// recompute storm that throws thousands of queries into one group would
/// make each of them pay the whole union envelope. Chunking the
/// signature run — pre-sorted by descending stale threshold, a cheap
/// proxy for traversal depth — bounds that product: members of similar
/// depth retire together, so each chunk's traversal is only as deep as
/// its own members need.
const GROUP_CHUNK: usize = 64;

fn check_dims(shared: &IngestState, query: &Query) -> Result<()> {
    if query.dims() != shared.dims() {
        return Err(TkmError::DimensionMismatch {
            expected: shared.dims(),
            got: query.dims(),
        });
    }
    Ok(())
}

/// The still-live suffix of an arrival run, skipping same-cycle transients
/// (already expired: cannot be in the final window, so they never have to
/// enter any result book-keeping).
///
/// Tuple ids are dense arrival sequence numbers and windows expire
/// strictly in id order, so the live window is the contiguous id range
/// `[oldest, newest]`; within a run the ids ascend, which makes the live
/// subset a suffix that can be sliced off without copying and without
/// resolving a single tuple through the window's storage. Returns `None`
/// when nothing of the run survived (or the window is empty). The matching
/// coordinates come from [`IngestState::arrival_run_coords`] — the tail of
/// the cell's own point block.
fn live_suffix<'a>(window: &Window, ids: &'a [TupleId]) -> Option<&'a [TupleId]> {
    let oldest = window.oldest()?;
    let start = ids.partition_point(|&id| id < oldest);
    if start == ids.len() {
        return None;
    }
    Some(&ids[start..])
}

/// Per-axis monotonicity signature: bit `d` set iff the function is
/// decreasing on axis `d`. Queries sharing a signature traverse the grid
/// in the same order and can share one group traversal.
fn mono_signature(f: &ScoreFn, dims: usize) -> u32 {
    let mut sig = 0u32;
    for d in 0..dims {
        if f.monotonicity(d) == Monotonicity::Decreasing {
            sig |= 1 << d;
        }
    }
    sig
}

fn absorb_compute(stats: &mut EngineStats, cs: ComputeStats) {
    stats.cells_processed += cs.cells_processed;
    stats.points_scanned += cs.points_scanned;
    stats.heap_pushes += cs.heap_pushes;
}

#[derive(Debug)]
struct TmaQuery {
    query: Query,
    /// The `k_max` refill band; its `query.k`-prefix is the current
    /// result. Keeping `k_max > k` candidates means result expiries are
    /// refilled from the band instead of triggering a grid traversal.
    band: Skyband,
    /// Dominance parameter of `band` ([`tuned_kmax`] of `query.k`).
    kmax: usize,
    /// Admission threshold: the `k_max`-th score at the last from-scratch
    /// computation (−∞ while the window cannot fill the band). Every band
    /// entry scores ≥ this, so while the band holds ≥ k entries its
    /// prefix is provably the exact top-k.
    ///
    /// The threshold is *static between recomputations* (that is what
    /// makes the exactness argument a one-liner), so a band started over a
    /// sparse window admits generously until the next traversal tightens
    /// it — see [`TmaMaintenance::fat_cap`].
    admit: f64,
    /// Recycled top-list buffers for recomputations.
    rec: TopList,
    affected: bool,
    /// Monotone floor of [`ComputeOutcome::region_bound`] over the
    /// computations since the last *resync* (a traversal that underfilled
    /// the band): cells with traversal keys strictly above this already
    /// carry the slot. Recomputations only lower it — a tightening
    /// traversal keeps the old superset listing instead of shrinking the
    /// region, so alternating thresholds stop churning the influence
    /// lists (see [`TmaMaintenance::recompute`]).
    ///
    /// [`ComputeOutcome::region_bound`]: crate::compute::ComputeOutcome
    region_bound: f64,
}

/// TMA maintenance (paper Figure 9) with `k_max` skyband refill as the
/// default configuration: exact top-k prefixes served from a per-query
/// refill band, from-scratch (and, when several queries fall back in one
/// tick, *batched*) recomputation only when the band drains below `k`.
#[derive(Debug)]
pub struct TmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: QueryRegistry<TmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
    /// Reused per-tick scratch: slots whose band lost a tuple this cycle
    /// (deduplicated via the per-query `affected` flag).
    affected: Vec<QuerySlot>,
    batched: bool,
    /// Reused per-tick scratch of the batching machinery.
    pending: Vec<(QuerySlot, u32, OrderedF64)>,
    members: Vec<GroupMember>,
    outcomes: Vec<GroupOutcome>,
    group_slots: Vec<QuerySlot>,
    seed: Vec<Scored>,
}

impl TmaMaintenance {
    /// The current top-k result of a query as a borrowed slice (the
    /// k-prefix of its refill band).
    pub fn result_slice(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(id)
            .map(|q| q.band.prefix(q.query.k))
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.ids()
    }

    /// The dense slot of a live query — the index its influence-list
    /// entries carry (diagnostics).
    pub fn query_slot(&self, id: QueryId) -> Option<QuerySlot> {
        self.queries.slot_of(id)
    }

    /// Queries whose result changed during the last cycle (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }

    /// Current refill-band size of a query (between `k` and ~`k_max`).
    pub fn band_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(id)
            .map(|q| q.band.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Runs the computation module for `slot` at `k_max` depth and
    /// reseeds its refill band.
    // lint: hot-path
    fn recompute(
        influence: &mut InfluenceTable,
        scratch: &mut ComputeScratch,
        shared: &IngestState,
        stats: &mut EngineStats,
        seed: &mut Vec<Scored>,
        slot: QuerySlot,
        st: &mut TmaQuery,
    ) {
        // Resync (assign the fresh bound and sweep the stale band) only
        // when the previous traversal underfilled the band — registration,
        // or a window drained below k_max. Otherwise the region bound is a
        // monotone floor: a tightening recomputation keeps the old, larger
        // listing (a superset region is sound — arrivals in the extra
        // cells fail the admission test, expirations miss the band — it
        // only costs replay probes), so a threshold flip-flop between
        // recomputations stops churning the influence lists.
        let resync = st.admit == f64::NEG_INFINITY;
        let out = compute_topk(
            shared.grid(),
            scratch,
            Some(InfluenceUpdate {
                table: influence,
                slot,
                listed_above: st.region_bound,
            }),
            &st.query.f,
            st.kmax,
            st.query.constraint.as_ref(),
            true,
            Some(std::mem::take(&mut st.rec)),
        );
        stats.recompute_queries += 1;
        stats.recompute_groups += 1;
        absorb_compute(stats, out.stats);
        // Seed the band with the top-k_max plus the candidates tying the
        // k_max-th score: a tie-loser outlives the tied band member and
        // can enter a future result.
        seed.clear();
        seed.extend_from_slice(out.top.as_slice());
        seed.extend_from_slice(&out.boundary_ties);
        st.band.rebuild(seed);
        st.admit = out.top.threshold();
        st.rec = out.top;
        if resync {
            st.region_bound = out.region_bound;
            stats.cleanup_cells += cleanup_from_frontier(
                shared.grid(),
                influence,
                scratch,
                slot,
                &st.query.f,
                st.query.constraint.as_ref(),
            );
        } else {
            st.region_bound = st.region_bound.min(out.region_bound);
        }
    }

    /// Band-size cap above which a *tightening* recomputation fires even
    /// though the band is healthy. The admission threshold is static
    /// between recomputations, so a query registered over a sparse window
    /// (admit −∞) would otherwise admit every arrival forever and its
    /// influence region would never shrink from the registration-time
    /// flood. The cap bounds both: one traversal resets the band to
    /// ~`k_max` entries and raises the threshold to the `k_max`-th score
    /// (the admit-−∞ trigger also makes that traversal a *resync*, so the
    /// flood-sized influence region is swept rather than floored).
    fn fat_cap(kmax: usize) -> usize {
        2 * kmax + 8
    }

    /// Whether `st` must fall back to a from-scratch computation: either
    /// the band can no longer serve an exact k-prefix while the window
    /// could supply more candidates (when the band holds the *whole*
    /// window it is exact by construction, however small), or the band
    /// outgrew [`Self::fat_cap`] and wants its threshold tightened.
    fn needs_recompute(st: &TmaQuery, shared: &IngestState) -> bool {
        (st.band.len() < st.query.k && st.band.len() < shared.window().len())
            || st.band.len() > Self::fat_cap(st.kmax)
    }
}

impl QueryMaintenance for TmaMaintenance {
    const SHARED_LABEL: &'static str = "TMA-SHARED";

    fn new_for(shared: &IngestState) -> TmaMaintenance {
        let cells = shared.grid().num_cells();
        TmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: QueryRegistry::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
            affected: Vec::new(),
            batched: true,
            pending: Vec::new(),
            members: Vec::new(),
            outcomes: Vec::new(),
            group_slots: Vec::new(),
            seed: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        check_dims(shared, &query)?;
        let kmax = tuned_kmax(query.k);
        let band = Skyband::new(kmax)?;
        let slot = self.queries.insert(
            id,
            TmaQuery {
                query,
                band,
                kmax,
                admit: f64::NEG_INFINITY,
                rec: TopList::default(),
                affected: false,
                region_bound: f64::INFINITY,
            },
        )?;
        let Self {
            influence,
            scratch,
            queries,
            stats,
            seed,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        st.rec = TopList::with_tie_tracking(st.kmax);
        Self::recompute(influence, scratch, shared, stats, seed, slot, st);
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    // lint: hot-path
    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();
        let dims = shared.dims();
        let Self {
            influence,
            scratch,
            queries,
            stats,
            changed,
            affected,
            batched,
            pending,
            members,
            outcomes,
            group_slots,
            seed,
        } = self;
        affected.clear();

        // ---- Pins (Figure 9, lines 3-7), inverted: cell → query → tuple.
        // The run's packed coordinate block (the tail of the cell's own
        // point block, still warm from ingest) streams through the scoring
        // kernel once per listed query; no window resolution per tuple.
        // Arrivals scoring at/above the admission threshold enter the
        // refill band; they change the *visible* result only when they
        // land inside the k-prefix.
        for (cell, ids) in shared.arrival_runs() {
            let slots = influence.as_slice(cell);
            if slots.is_empty() {
                continue;
            }
            let Some(ids) = live_suffix(shared.window(), ids) else {
                continue;
            };
            let coords = shared.arrival_run_coords(cell, ids.len());
            for &slot in slots {
                stats.cell_probes += 1;
                stats.tuple_probes += ids.len() as u64;
                let (qid, st) = queries.slot_mut(slot);
                let k = st.query.k;
                let admit = st.admit;
                let band = &mut st.band;
                let mut stored = 0u64;
                let mut visible = false;
                kernel::scan_block(
                    &st.query.f,
                    dims,
                    ids,
                    coords,
                    st.query.constraint.as_ref(),
                    |id, score| {
                        if score >= admit {
                            if let Some(pos) = band.insert(Scored::new(score, id)) {
                                stored += 1;
                                visible |= pos < k;
                            }
                        }
                    },
                );
                if stored > 0 {
                    stats.result_updates += stored;
                    // A band past the cap schedules a tightening
                    // recomputation (checked with the deficient ones).
                    if st.band.len() > Self::fat_cap(st.kmax) && !st.affected {
                        st.affected = true;
                        affected.push(slot);
                    }
                }
                if visible {
                    changed.push(qid);
                }
            }
        }

        // ---- Pdel (lines 8-11), same inversion; no coordinates needed.
        // An expiry inside the band is absorbed by the refill: the next
        // band entry slides into the k-prefix with no grid work at all.
        //
        // A synchronized expiry wave turns the per-tuple replay quadratic:
        // the wave's tuples are the very top scorers, so every one of them
        // lands in cells that every query covers, and each (cell, covering
        // query, tuple) triple costs a linear band probe. Once the probe
        // count exceeds the fleet size, one sweep per band against the
        // oldest live id is strictly cheaper — windows expire in id order,
        // so "older than the oldest live tuple" identifies the expired
        // band entries exactly.
        let mut probes = 0usize;
        for (cell, tuples) in shared.expiry_runs() {
            probes += influence.as_slice(cell).len() * tuples.len();
        }
        if probes > 2 * queries.len() {
            let cutoff = shared.window().oldest().unwrap_or(TupleId(u64::MAX));
            for (slot, qid, st) in queries.slots_mut() {
                stats.tuple_probes += 1;
                if let Some(pos) = st.band.expire_before(cutoff) {
                    if pos < st.query.k {
                        changed.push(qid);
                    }
                    if !st.affected {
                        st.affected = true;
                        affected.push(slot);
                    }
                }
            }
        } else {
            for (cell, tuples) in shared.expiry_runs() {
                for &slot in influence.as_slice(cell) {
                    stats.cell_probes += 1;
                    let (qid, st) = queries.slot_mut(slot);
                    let k = st.query.k;
                    for &id in tuples {
                        stats.tuple_probes += 1;
                        if let Some(pos) = st.band.expire(id) {
                            if pos < k {
                                changed.push(qid);
                            }
                            if !st.affected {
                                st.affected = true;
                                affected.push(slot);
                            }
                        }
                    }
                }
            }
        }

        // ---- Fallback recomputation (lines 12-21) — only for queries
        // whose band drained below k. Unconstrained fallbacks are grouped
        // by monotonicity signature and served by one shared traversal
        // per group; constrained ones (and singleton groups) go solo.
        // (A recomputation never has to mark `changed` itself: a
        // deficiency implies an expiry inside the k-prefix, which already
        // pushed the query; a cap-tightening rebuild reproduces the exact
        // prefix the band was already serving.)
        pending.clear();
        for &slot in affected.iter() {
            let (_, st) = queries.slot_mut(slot);
            st.affected = false;
            if !Self::needs_recompute(st, shared) {
                continue;
            }
            if *batched && st.query.constraint.is_none() {
                pending.push((
                    slot,
                    mono_signature(&st.query.f, dims),
                    OrderedF64::new(st.admit),
                ));
            } else {
                Self::recompute(influence, scratch, shared, stats, seed, slot, st);
            }
        }

        pending.sort_unstable_by_key(|&(slot, sig, depth)| (sig, std::cmp::Reverse(depth), slot.0));
        let mut i = 0;
        while i < pending.len() {
            let sig = pending[i].1;
            let mut sig_end = i + 1;
            while sig_end < pending.len() && pending[sig_end].1 == sig {
                sig_end += 1;
            }
            // One traversal per GROUP_CHUNK members, sliced off the
            // signature run in descending-threshold order: a shared
            // traversal costs O(members x envelope cells), and mixing a
            // deep (stale or deficient) member into a shallow group makes
            // every member pay its envelope. Depth-sorted chunks keep
            // each traversal as shallow as its own members need.
            let j = sig_end.min(i + GROUP_CHUNK);
            if j - i == 1 {
                let slot = pending[i].0;
                let (_, st) = queries.slot_mut(slot);
                Self::recompute(influence, scratch, shared, stats, seed, slot, st);
            } else {
                members.clear();
                // `group_slots` collects only the members that resync
                // (previous traversal underfilled: admit −∞); everyone
                // else keeps their superset listing (monotone region
                // floor, see `recompute`) and needs no frontier sweep.
                group_slots.clear();
                let mut walk_f: Option<ScoreFn> = None;
                let mut total = 0u64;
                for &(slot, _, _) in &pending[i..j] {
                    let (_, st) = queries.slot_mut(slot);
                    if walk_f.is_none() {
                        // lint: allow(alloc, reason=one O(dims) coefficient copy per refill group, amortised by the traversal it seeds)
                        walk_f = Some(st.query.f.clone());
                    }
                    let resync = st.admit == f64::NEG_INFINITY;
                    members.push(GroupMember {
                        slot,
                        // lint: allow(alloc, reason=one O(dims) coefficient copy per member per refill, amortised by the shared traversal)
                        f: st.query.f.clone(),
                        k: st.kmax,
                        listed_above: st.region_bound,
                        keep_superset: !resync,
                        track_ties: true,
                        reuse: Some(std::mem::take(&mut st.rec)),
                    });
                    if resync {
                        group_slots.push(slot);
                    }
                    total += 1;
                }
                let gstats =
                    compute_topk_group(shared.grid(), scratch, influence, members, outcomes);
                stats.recompute_groups += 1;
                stats.recompute_queries += total;
                absorb_compute(stats, gstats);
                debug_assert!(walk_f.is_some() || group_slots.is_empty());
                if let Some(walk) = walk_f.as_ref().filter(|_| !group_slots.is_empty()) {
                    stats.cleanup_cells += cleanup_group_from_frontier(
                        shared.grid(),
                        influence,
                        scratch,
                        group_slots,
                        walk,
                    );
                }
                for out in outcomes.drain(..) {
                    let (_, st) = queries.slot_mut(out.slot);
                    seed.clear();
                    seed.extend_from_slice(out.top.as_slice());
                    seed.extend_from_slice(&out.boundary_ties);
                    st.band.rebuild(seed);
                    let resync = st.admit == f64::NEG_INFINITY;
                    st.admit = out.top.threshold();
                    st.region_bound = if resync {
                        out.region_bound
                    } else {
                        st.region_bound.min(out.region_bound)
                    };
                    st.rec = out.top;
                }
            }
            i = j;
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.result_slice(id).map(<[Scored]>::to_vec)
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        check_dims(shared, query)?;
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
            None,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.space_bytes()
            + self.queries.space_bytes()
            + (self.changed.capacity() * std::mem::size_of::<QueryId>())
            + (self.affected.capacity() * std::mem::size_of::<QuerySlot>())
            + (self.pending.capacity() * std::mem::size_of::<(QuerySlot, u32, OrderedF64)>())
            + (self.members.capacity() * std::mem::size_of::<GroupMember>())
            + (self.outcomes.capacity() * std::mem::size_of::<GroupOutcome>())
            + (self.group_slots.capacity() * std::mem::size_of::<QuerySlot>())
            + (self.seed.capacity() * std::mem::size_of::<Scored>())
            + self
                .queries
                .iter()
                .map(|(_, q)| {
                    std::mem::size_of::<TmaQuery>() + q.band.space_bytes() + q.rec.space_bytes()
                })
                .sum::<usize>()
    }

    fn set_batched_recompute(&mut self, on: bool) {
        self.batched = on;
    }
}

#[derive(Debug)]
struct SmaQuery {
    query: Query,
    skyband: Skyband,
    /// Monotone floor of [`ComputeOutcome::region_bound`] over the
    /// computations since the last resync (see the TMA twin of this
    /// field): cells with traversal keys strictly above this already
    /// carry the slot.
    ///
    /// [`ComputeOutcome::region_bound`]: crate::compute::ComputeOutcome
    region_bound: f64,
    /// k-th score at the last from-scratch computation; the skyband
    /// admission threshold (−∞ until the window holds k candidates).
    top_score: f64,
    touched: bool,
}

/// SMA maintenance (paper Figure 11): k-skyband upkeep in (score,
/// expiry-time) space, recomputing only on deficiency — and, when several
/// queries turn deficient in the same tick, recomputing them with one
/// shared traversal per monotonicity group.
#[derive(Debug)]
pub struct SmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: QueryRegistry<SmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
    /// Reused per-tick scratch: slots whose skyband was touched this cycle
    /// (deduplicated via the per-query `touched` flag).
    affected: Vec<QuerySlot>,
    batched: bool,
    /// Reused per-tick scratch of the batching machinery.
    pending: Vec<(QuerySlot, u32, OrderedF64)>,
    members: Vec<GroupMember>,
    outcomes: Vec<GroupOutcome>,
    group_slots: Vec<QuerySlot>,
    seed: Vec<Scored>,
}

impl SmaMaintenance {
    /// Runs the computation module for `slot` and reseeds its skyband.
    // lint: hot-path
    fn recompute(
        influence: &mut InfluenceTable,
        scratch: &mut ComputeScratch,
        shared: &IngestState,
        stats: &mut EngineStats,
        seed: &mut Vec<Scored>,
        slot: QuerySlot,
        st: &mut SmaQuery,
    ) {
        // Monotone region floor, as in the TMA engine: resync (assign the
        // fresh bound, sweep the stale band) only when the previous
        // traversal underfilled the skyband; otherwise keep the superset
        // listing and floor the bound.
        let resync = st.top_score == f64::NEG_INFINITY;
        let out = compute_topk(
            shared.grid(),
            scratch,
            Some(InfluenceUpdate {
                table: influence,
                slot,
                listed_above: st.region_bound,
            }),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            true,
            None,
        );
        stats.recompute_queries += 1;
        stats.recompute_groups += 1;
        absorb_compute(stats, out.stats);
        // Seed the skyband with the top-k plus the candidates tying the
        // k-th score: a tie-loser outlives the tied result member and can
        // enter a future result, so dropping it would lose exactness.
        seed.clear();
        seed.extend_from_slice(out.top.as_slice());
        seed.extend_from_slice(&out.boundary_ties);
        st.skyband.rebuild(seed);
        st.top_score = out.top.threshold();
        if resync {
            st.region_bound = out.region_bound;
            stats.cleanup_cells += cleanup_from_frontier(
                shared.grid(),
                influence,
                scratch,
                slot,
                &st.query.f,
                st.query.constraint.as_ref(),
            );
        } else {
            st.region_bound = st.region_bound.min(out.region_bound);
        }
    }

    /// Current skyband size of a query (Table 2 reports its average).
    pub fn skyband_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(id)
            .map(|q| q.skyband.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Mean skyband size across queries.
    pub fn avg_skyband_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|(_, q)| q.skyband.len())
            .sum::<usize>() as f64
            / self.queries.len() as f64
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.ids()
    }

    /// The dense slot of a live query — the index its influence-list
    /// entries carry (diagnostics).
    pub fn query_slot(&self, id: QueryId) -> Option<QuerySlot> {
        self.queries.slot_of(id)
    }

    /// Queries whose skyband changed during the last cycle (sorted,
    /// deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }
}

impl QueryMaintenance for SmaMaintenance {
    const SHARED_LABEL: &'static str = "SMA-SHARED";

    fn new_for(shared: &IngestState) -> SmaMaintenance {
        let cells = shared.grid().num_cells();
        SmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: QueryRegistry::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
            affected: Vec::new(),
            batched: true,
            pending: Vec::new(),
            members: Vec::new(),
            outcomes: Vec::new(),
            group_slots: Vec::new(),
            seed: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        check_dims(shared, &query)?;
        let skyband = Skyband::new(query.k)?;
        let slot = self.queries.insert(
            id,
            SmaQuery {
                skyband,
                query,
                region_bound: f64::INFINITY,
                top_score: f64::NEG_INFINITY,
                touched: false,
            },
        )?;
        let Self {
            influence,
            scratch,
            queries,
            stats,
            seed,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        Self::recompute(influence, scratch, shared, stats, seed, slot, st);
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    // lint: hot-path
    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();
        let dims = shared.dims();
        let Self {
            influence,
            scratch,
            queries,
            stats,
            changed,
            affected,
            batched,
            pending,
            members,
            outcomes,
            group_slots,
            seed,
        } = self;
        affected.clear();

        // ---- Pins (Figure 11, lines 4-11), inverted: cell → query →
        // tuple; the run's coordinate block (the tail of the cell's own
        // point block) streams through the scoring kernel once per listed
        // query.
        for (cell, ids) in shared.arrival_runs() {
            let slots = influence.as_slice(cell);
            if slots.is_empty() {
                continue;
            }
            let Some(ids) = live_suffix(shared.window(), ids) else {
                continue;
            };
            let coords = shared.arrival_run_coords(cell, ids.len());
            for &slot in slots {
                stats.cell_probes += 1;
                stats.tuple_probes += ids.len() as u64;
                let (_, st) = queries.slot_mut(slot);
                let admit = st.top_score;
                let skyband = &mut st.skyband;
                let mut inserted = 0u64;
                kernel::scan_block(
                    &st.query.f,
                    dims,
                    ids,
                    coords,
                    st.query.constraint.as_ref(),
                    |id, score| {
                        if score >= admit {
                            skyband.insert(Scored::new(score, id));
                            inserted += 1;
                        }
                    },
                );
                if inserted > 0 {
                    stats.result_updates += inserted;
                    if !st.touched {
                        st.touched = true;
                        affected.push(slot);
                    }
                }
            }
        }

        // ---- Pdel (lines 12-16) ----
        // Same mass-expiry escape hatch as TMA: when a synchronized wave
        // would probe more (cell, query, tuple) triples than there are
        // queries, sweep each skyband once against the oldest live id
        // instead of replaying tuple by tuple.
        let mut probes = 0usize;
        for (cell, tuples) in shared.expiry_runs() {
            probes += influence.as_slice(cell).len() * tuples.len();
        }
        if probes > 2 * queries.len() {
            let cutoff = shared.window().oldest().unwrap_or(TupleId(u64::MAX));
            for (slot, _, st) in queries.slots_mut() {
                stats.tuple_probes += 1;
                if st.skyband.expire_before(cutoff).is_some() && !st.touched {
                    st.touched = true;
                    affected.push(slot);
                }
            }
        } else {
            for (cell, tuples) in shared.expiry_runs() {
                for &slot in influence.as_slice(cell) {
                    stats.cell_probes += 1;
                    let (_, st) = queries.slot_mut(slot);
                    for &id in tuples {
                        stats.tuple_probes += 1;
                        if st.skyband.expire(id).is_some() && !st.touched {
                            st.touched = true;
                            affected.push(slot);
                        }
                    }
                }
            }
        }

        // ---- Deficiency handling (lines 17-22) ----
        // Recompute only if the skyband lost too many entries AND the
        // window could supply more (a window smaller than k can never
        // fill the band — recomputing every tick would be wasted work,
        // and the influence lists already cover the whole grid then).
        // Unconstrained deficient queries are grouped by monotonicity
        // signature and recomputed with one shared traversal per group.
        pending.clear();
        for &slot in affected.iter() {
            let (qid, st) = queries.slot_mut(slot);
            st.touched = false;
            if st.skyband.is_deficient() && st.skyband.len() < shared.window().len() {
                if *batched && st.query.constraint.is_none() {
                    pending.push((
                        slot,
                        mono_signature(&st.query.f, dims),
                        OrderedF64::new(st.top_score),
                    ));
                } else {
                    Self::recompute(influence, scratch, shared, stats, seed, slot, st);
                }
            }
            changed.push(qid);
        }

        pending.sort_unstable_by_key(|&(slot, sig, depth)| (sig, std::cmp::Reverse(depth), slot.0));
        let mut i = 0;
        while i < pending.len() {
            let sig = pending[i].1;
            let mut sig_end = i + 1;
            while sig_end < pending.len() && pending[sig_end].1 == sig {
                sig_end += 1;
            }
            // One traversal per GROUP_CHUNK members, sliced off the
            // signature run in descending-threshold order: a shared
            // traversal costs O(members x envelope cells), and mixing a
            // deep (stale or deficient) member into a shallow group makes
            // every member pay its envelope. Depth-sorted chunks keep
            // each traversal as shallow as its own members need.
            let j = sig_end.min(i + GROUP_CHUNK);
            if j - i == 1 {
                let slot = pending[i].0;
                let (_, st) = queries.slot_mut(slot);
                Self::recompute(influence, scratch, shared, stats, seed, slot, st);
            } else {
                members.clear();
                // As in the TMA engine: `group_slots` collects only the
                // resyncing members; the rest keep their superset listing
                // (monotone region floor) and skip the frontier sweep.
                group_slots.clear();
                let mut walk_f: Option<ScoreFn> = None;
                let mut total = 0u64;
                for &(slot, _, _) in &pending[i..j] {
                    let (_, st) = queries.slot_mut(slot);
                    if walk_f.is_none() {
                        // lint: allow(alloc, reason=one O(dims) coefficient copy per refill group, amortised by the traversal it seeds)
                        walk_f = Some(st.query.f.clone());
                    }
                    let resync = st.top_score == f64::NEG_INFINITY;
                    members.push(GroupMember {
                        slot,
                        // lint: allow(alloc, reason=one O(dims) coefficient copy per member per refill, amortised by the shared traversal)
                        f: st.query.f.clone(),
                        k: st.query.k,
                        listed_above: st.region_bound,
                        keep_superset: !resync,
                        track_ties: true,
                        reuse: None,
                    });
                    if resync {
                        group_slots.push(slot);
                    }
                    total += 1;
                }
                let gstats =
                    compute_topk_group(shared.grid(), scratch, influence, members, outcomes);
                stats.recompute_groups += 1;
                stats.recompute_queries += total;
                absorb_compute(stats, gstats);
                debug_assert!(walk_f.is_some() || group_slots.is_empty());
                if let Some(walk) = walk_f.as_ref().filter(|_| !group_slots.is_empty()) {
                    stats.cleanup_cells += cleanup_group_from_frontier(
                        shared.grid(),
                        influence,
                        scratch,
                        group_slots,
                        walk,
                    );
                }
                for out in outcomes.drain(..) {
                    let (_, st) = queries.slot_mut(out.slot);
                    seed.clear();
                    seed.extend_from_slice(out.top.as_slice());
                    seed.extend_from_slice(&out.boundary_ties);
                    st.skyband.rebuild(seed);
                    let resync = st.top_score == f64::NEG_INFINITY;
                    st.top_score = out.top.threshold();
                    st.region_bound = if resync {
                        out.region_bound
                    } else {
                        st.region_bound.min(out.region_bound)
                    };
                }
            }
            i = j;
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.queries
            .get(id)
            .map(|q| q.skyband.top_scored().to_vec())
            .ok_or(TkmError::UnknownQuery(id))
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        check_dims(shared, query)?;
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
            None,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.space_bytes()
            + self.queries.space_bytes()
            + (self.changed.capacity() * std::mem::size_of::<QueryId>())
            + (self.affected.capacity() * std::mem::size_of::<QuerySlot>())
            + (self.pending.capacity() * std::mem::size_of::<(QuerySlot, u32, OrderedF64)>())
            + (self.members.capacity() * std::mem::size_of::<GroupMember>())
            + (self.outcomes.capacity() * std::mem::size_of::<GroupOutcome>())
            + (self.group_slots.capacity() * std::mem::size_of::<QuerySlot>())
            + (self.seed.capacity() * std::mem::size_of::<Scored>())
            + self
                .queries
                .iter()
                .map(|(_, q)| std::mem::size_of::<SmaQuery>() + q.skyband.space_bytes())
                .sum::<usize>()
    }

    fn set_batched_recompute(&mut self, on: bool) {
        self.batched = on;
    }
}
