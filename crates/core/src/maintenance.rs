//! Per-query maintenance stages, decoupled from tuple ingest.
//!
//! A [`QueryMaintenance`] value owns everything that is *per-query*: the
//! queries themselves, their result book-keeping (top-lists for TMA,
//! skybands for SMA), the influence lists covering them, and the traversal
//! scratch. It never mutates the shared window or grid — every cycle it
//! *replays* the event lists recorded by [`IngestState::ingest`] against an
//! immutable `&IngestState` view. That is what makes the stage shardable:
//! partition the queries over several `QueryMaintenance` values and run
//! [`QueryMaintenance::apply_events`] on each from its own thread, all
//! reading the same window and grid.
//!
//! [`TmaMaintenance`] and [`SmaMaintenance`] are the paper's two
//! maintenance modules (Figures 9 and 11) restated over event lists; the
//! single-engine monitors [`crate::TmaMonitor`] / [`crate::SmaMonitor`] are
//! thin ingest+maintenance sandwiches, so the sharded and unsharded paths
//! execute literally the same maintenance code.
//!
//! The replay loop is built for throughput:
//!
//! * per-query state lives in a dense [`QueryRegistry`] and the influence
//!   lists carry 4-byte [`QuerySlot`]s, so resolving an influence entry is
//!   a `Vec` index instead of a `BTreeMap` probe;
//! * events arrive **grouped by cell** ([`IngestState::arrival_runs`]),
//!   and a run's coordinates are the tail of its cell's coordinate-inline
//!   point block ([`IngestState::arrival_run_coords`]): each cell's
//!   influence list is walked once per tick and the run's packed block
//!   streams through the dim-specialized [`crate::kernel`] scan for every
//!   listed query with that query's state hot in cache (the loop order is
//!   cell → query → tuple) — replay scoring never resolves a tuple
//!   through the window ring and never copies a coordinate;
//! * the traversal heap and frontier live in [`ComputeScratch`], so
//!   steady-state ticks allocate nothing.
//!
//! One deliberate difference from the interleaved originals: an arrival
//! that expires within its own cycle (count window overrun by a burst) is
//! skipped instead of being offered and then removed. Such a tuple is
//! evicted only after every older tuple (windows are FIFO), so skipping it
//! never hides a result candidate, and the recompute-on-expiry path
//! restores exactness for whatever the burst displaced — the differential
//! suite pins sharded and unsharded results to the oracle either way.

use crate::compute::{compute_topk, ComputeScratch, InfluenceUpdate};
use crate::influence::{cleanup_from_frontier, remove_query_walk};
use crate::ingest::IngestState;
use crate::kernel;
use crate::query::Query;
use crate::registry::QueryRegistry;
use crate::result::TopList;
use crate::stats::EngineStats;
use tkm_common::{QueryId, QuerySlot, Result, Scored, TkmError, TupleId};
use tkm_grid::InfluenceTable;
use tkm_skyband::Skyband;
use tkm_window::Window;

/// One shard's worth of per-query monitoring state.
///
/// Implementations must be [`Send`] so a sharded monitor can drive them
/// from scoped threads; the shared state they read is only borrowed
/// immutably.
pub trait QueryMaintenance: Send {
    /// Label reported by a shared-ingest sharded monitor built on this
    /// maintenance stage.
    const SHARED_LABEL: &'static str;

    /// Creates an empty maintenance stage sized for `shared`'s grid.
    fn new_for(shared: &IngestState) -> Self
    where
        Self: Sized;

    /// Registers a query and computes its initial result against the
    /// current shared window.
    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()>;

    /// Terminates a query, clearing its influence-list entries.
    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()>;

    /// Replays the shared state's last recorded cycle (arrival events, then
    /// expiry events, then recomputation of affected queries) against this
    /// stage's queries.
    fn apply_events(&mut self, shared: &IngestState) -> Result<()>;

    /// The current top-k result of a query, best first.
    fn result(&self, id: QueryId) -> Result<Vec<Scored>>;

    /// One-shot top-k over the shared window, leaving no state behind.
    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>>;

    /// Number of queries maintained by this stage.
    fn query_count(&self) -> usize;

    /// This stage's influence lists (read access, for diagnostics).
    fn influence(&self) -> &InfluenceTable;

    /// Cumulative maintenance-side counters (stream-side counters live in
    /// [`IngestState::stats`]).
    fn stats(&self) -> EngineStats;

    /// Deep size estimate of the per-query state in bytes.
    fn space_bytes(&self) -> usize;
}

fn check_dims(shared: &IngestState, query: &Query) -> Result<()> {
    if query.dims() != shared.dims() {
        return Err(TkmError::DimensionMismatch {
            expected: shared.dims(),
            got: query.dims(),
        });
    }
    Ok(())
}

/// The still-live suffix of an arrival run, skipping same-cycle transients
/// (already expired: cannot be in the final window, so they never have to
/// enter any result book-keeping).
///
/// Tuple ids are dense arrival sequence numbers and windows expire
/// strictly in id order, so the live window is the contiguous id range
/// `[oldest, newest]`; within a run the ids ascend, which makes the live
/// subset a suffix that can be sliced off without copying and without
/// resolving a single tuple through the window's storage. Returns `None`
/// when nothing of the run survived (or the window is empty). The matching
/// coordinates come from [`IngestState::arrival_run_coords`] — the tail of
/// the cell's own point block.
fn live_suffix<'a>(window: &Window, ids: &'a [TupleId]) -> Option<&'a [TupleId]> {
    let oldest = window.oldest()?;
    let start = ids.partition_point(|&id| id < oldest);
    if start == ids.len() {
        return None;
    }
    Some(&ids[start..])
}

#[derive(Debug)]
struct TmaQuery {
    query: Query,
    top: TopList,
    affected: bool,
    /// [`ComputeOutcome::region_bound`] of the last computation: cells
    /// with traversal keys strictly above this already carry the slot.
    ///
    /// [`ComputeOutcome::region_bound`]: crate::compute::ComputeOutcome
    region_bound: f64,
}

/// TMA maintenance (paper Figure 9): exact top-k lists, recomputed from
/// scratch when a result tuple expires.
#[derive(Debug)]
pub struct TmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: QueryRegistry<TmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
    /// Reused per-tick scratch: slots whose result lost a tuple this cycle
    /// (deduplicated via the per-query `affected` flag).
    affected: Vec<QuerySlot>,
}

impl TmaMaintenance {
    /// The current top-k result of a query as a borrowed slice.
    pub fn result_slice(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(id)
            .map(|q| q.top.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.ids()
    }

    /// The dense slot of a live query — the index its influence-list
    /// entries carry (diagnostics).
    pub fn query_slot(&self, id: QueryId) -> Option<QuerySlot> {
        self.queries.slot_of(id)
    }

    /// Queries whose result changed during the last cycle (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }
}

impl QueryMaintenance for TmaMaintenance {
    const SHARED_LABEL: &'static str = "TMA-SHARED";

    fn new_for(shared: &IngestState) -> TmaMaintenance {
        let cells = shared.grid().num_cells();
        TmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: QueryRegistry::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
            affected: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        check_dims(shared, &query)?;
        let k = query.k;
        let slot = self.queries.insert(
            id,
            TmaQuery {
                query,
                top: TopList::new(k),
                affected: false,
                region_bound: f64::INFINITY,
            },
        )?;
        let Self {
            influence,
            scratch,
            queries,
            stats,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        let out = compute_topk(
            shared.grid(),
            scratch,
            Some(InfluenceUpdate::fresh(influence, slot)),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            false,
            Some(std::mem::take(&mut st.top)),
        );
        stats.recomputations += 1;
        stats.cells_processed += out.stats.cells_processed;
        stats.points_scanned += out.stats.points_scanned;
        stats.heap_pushes += out.stats.heap_pushes;
        st.top = out.top;
        st.region_bound = out.region_bound;
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();
        let dims = shared.dims();
        let Self {
            influence,
            scratch,
            queries,
            stats,
            changed,
            affected,
        } = self;
        affected.clear();

        // ---- Pins (Figure 9, lines 3-7), inverted: cell → query → tuple.
        // The run's packed coordinate block (the tail of the cell's own
        // point block, still warm from ingest) streams through the scoring
        // kernel once per listed query; no window resolution per tuple.
        for (cell, ids) in shared.arrival_runs() {
            let slots = influence.as_slice(cell);
            if slots.is_empty() {
                continue;
            }
            let Some(ids) = live_suffix(shared.window(), ids) else {
                continue;
            };
            let coords = shared.arrival_run_coords(cell, ids.len());
            for &slot in slots {
                stats.cell_probes += 1;
                stats.tuple_probes += ids.len() as u64;
                let (qid, st) = queries.slot_mut(slot);
                let top = &mut st.top;
                let mut updates = 0u64;
                kernel::scan_block(
                    &st.query.f,
                    dims,
                    ids,
                    coords,
                    st.query.constraint.as_ref(),
                    |id, score| {
                        // threshold() is −∞ while the list is short, so
                        // this single test covers the warm-up phase too.
                        if score >= top.threshold() && top.offer(Scored::new(score, id)) {
                            updates += 1;
                        }
                    },
                );
                if updates > 0 {
                    stats.result_updates += updates;
                    changed.push(qid);
                }
            }
        }

        // ---- Pdel (lines 8-11), same inversion; no coordinates needed.
        for (cell, tuples) in shared.expiry_runs() {
            for &slot in influence.as_slice(cell) {
                stats.cell_probes += 1;
                let (_, st) = queries.slot_mut(slot);
                for &id in tuples {
                    stats.tuple_probes += 1;
                    if st.top.remove(id) && !st.affected {
                        st.affected = true;
                        affected.push(slot);
                    }
                }
            }
        }

        // ---- Recompute affected queries (lines 12-21) ----
        for &slot in affected.iter() {
            let (qid, st) = queries.slot_mut(slot);
            st.affected = false;
            let out = compute_topk(
                shared.grid(),
                scratch,
                Some(InfluenceUpdate {
                    table: influence,
                    slot,
                    listed_above: st.region_bound,
                }),
                &st.query.f,
                st.query.k,
                st.query.constraint.as_ref(),
                false,
                Some(std::mem::take(&mut st.top)),
            );
            stats.recomputations += 1;
            stats.cells_processed += out.stats.cells_processed;
            stats.points_scanned += out.stats.points_scanned;
            stats.heap_pushes += out.stats.heap_pushes;
            st.top = out.top;
            st.region_bound = out.region_bound;
            stats.cleanup_cells += cleanup_from_frontier(
                shared.grid(),
                influence,
                scratch,
                slot,
                &st.query.f,
                st.query.constraint.as_ref(),
            );
            changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.result_slice(id).map(<[Scored]>::to_vec)
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        check_dims(shared, query)?;
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
            None,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.space_bytes()
            + self.queries.overhead_bytes()
            + (self.changed.capacity() * std::mem::size_of::<QueryId>())
            + (self.affected.capacity() * std::mem::size_of::<QuerySlot>())
            + self
                .queries
                .iter()
                .map(|(_, q)| std::mem::size_of::<TmaQuery>() + q.top.space_bytes())
                .sum::<usize>()
    }
}

#[derive(Debug)]
struct SmaQuery {
    query: Query,
    skyband: Skyband,
    /// [`ComputeOutcome::region_bound`] of the last computation: cells
    /// with traversal keys strictly above this already carry the slot.
    ///
    /// [`ComputeOutcome::region_bound`]: crate::compute::ComputeOutcome
    region_bound: f64,
    /// k-th score at the last from-scratch computation; the skyband
    /// admission threshold (−∞ until the window holds k candidates).
    top_score: f64,
    touched: bool,
}

/// SMA maintenance (paper Figure 11): k-skyband upkeep in (score,
/// expiry-time) space, recomputing only on deficiency.
#[derive(Debug)]
pub struct SmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: QueryRegistry<SmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
    /// Reused per-tick scratch: slots whose skyband was touched this cycle
    /// (deduplicated via the per-query `touched` flag).
    affected: Vec<QuerySlot>,
}

impl SmaMaintenance {
    /// Runs the computation module for `slot` and reseeds its skyband.
    fn recompute(
        influence: &mut InfluenceTable,
        scratch: &mut ComputeScratch,
        shared: &IngestState,
        stats: &mut EngineStats,
        slot: QuerySlot,
        st: &mut SmaQuery,
    ) {
        let out = compute_topk(
            shared.grid(),
            scratch,
            Some(InfluenceUpdate {
                table: influence,
                slot,
                listed_above: st.region_bound,
            }),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            true,
            None,
        );
        stats.recomputations += 1;
        stats.cells_processed += out.stats.cells_processed;
        stats.points_scanned += out.stats.points_scanned;
        stats.heap_pushes += out.stats.heap_pushes;
        // Seed the skyband with the top-k plus the candidates tying the
        // k-th score: a tie-loser outlives the tied result member and can
        // enter a future result, so dropping it would lose exactness.
        let mut seed: Vec<Scored> = Vec::with_capacity(out.top.len() + out.boundary_ties.len());
        seed.extend_from_slice(out.top.as_slice());
        seed.extend_from_slice(&out.boundary_ties);
        st.skyband.rebuild(&seed);
        st.top_score = out.top.threshold();
        st.region_bound = out.region_bound;
        stats.cleanup_cells += cleanup_from_frontier(
            shared.grid(),
            influence,
            scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
    }

    /// Current skyband size of a query (Table 2 reports its average).
    pub fn skyband_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(id)
            .map(|q| q.skyband.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Mean skyband size across queries.
    pub fn avg_skyband_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|(_, q)| q.skyband.len())
            .sum::<usize>() as f64
            / self.queries.len() as f64
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.ids()
    }

    /// The dense slot of a live query — the index its influence-list
    /// entries carry (diagnostics).
    pub fn query_slot(&self, id: QueryId) -> Option<QuerySlot> {
        self.queries.slot_of(id)
    }

    /// Queries whose skyband changed during the last cycle (sorted,
    /// deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }
}

impl QueryMaintenance for SmaMaintenance {
    const SHARED_LABEL: &'static str = "SMA-SHARED";

    fn new_for(shared: &IngestState) -> SmaMaintenance {
        let cells = shared.grid().num_cells();
        SmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: QueryRegistry::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
            affected: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        check_dims(shared, &query)?;
        let skyband = Skyband::new(query.k)?;
        let slot = self.queries.insert(
            id,
            SmaQuery {
                skyband,
                query,
                region_bound: f64::INFINITY,
                top_score: f64::NEG_INFINITY,
                touched: false,
            },
        )?;
        let Self {
            influence,
            scratch,
            queries,
            stats,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        Self::recompute(influence, scratch, shared, stats, slot, st);
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();
        let dims = shared.dims();
        let Self {
            influence,
            scratch,
            queries,
            stats,
            affected,
            ..
        } = self;
        affected.clear();

        // ---- Pins (Figure 11, lines 4-11), inverted: cell → query →
        // tuple; the run's coordinate block (the tail of the cell's own
        // point block) streams through the scoring kernel once per listed
        // query.
        for (cell, ids) in shared.arrival_runs() {
            let slots = influence.as_slice(cell);
            if slots.is_empty() {
                continue;
            }
            let Some(ids) = live_suffix(shared.window(), ids) else {
                continue;
            };
            let coords = shared.arrival_run_coords(cell, ids.len());
            for &slot in slots {
                stats.cell_probes += 1;
                stats.tuple_probes += ids.len() as u64;
                let (_, st) = queries.slot_mut(slot);
                let admit = st.top_score;
                let skyband = &mut st.skyband;
                let mut inserted = 0u64;
                kernel::scan_block(
                    &st.query.f,
                    dims,
                    ids,
                    coords,
                    st.query.constraint.as_ref(),
                    |id, score| {
                        if score >= admit {
                            skyband.insert(Scored::new(score, id));
                            inserted += 1;
                        }
                    },
                );
                if inserted > 0 {
                    stats.result_updates += inserted;
                    if !st.touched {
                        st.touched = true;
                        affected.push(slot);
                    }
                }
            }
        }

        // ---- Pdel (lines 12-16) ----
        for (cell, tuples) in shared.expiry_runs() {
            for &slot in influence.as_slice(cell) {
                stats.cell_probes += 1;
                let (_, st) = queries.slot_mut(slot);
                for &id in tuples {
                    stats.tuple_probes += 1;
                    if st.skyband.expire(id) && !st.touched {
                        st.touched = true;
                        affected.push(slot);
                    }
                }
            }
        }

        // ---- Deficiency handling (lines 17-22) ----
        for &slot in affected.iter() {
            let (qid, st) = queries.slot_mut(slot);
            st.touched = false;
            // Recompute only if the skyband lost too many entries AND the
            // window could supply more (a window smaller than k can never
            // fill the band — recomputing every tick would be wasted work,
            // and the influence lists already cover the whole grid then).
            if st.skyband.is_deficient() && st.skyband.len() < shared.window().len() {
                Self::recompute(influence, scratch, shared, stats, slot, st);
            }
            self.changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.queries
            .get(id)
            .map(|q| q.skyband.top().iter().map(|e| e.scored).collect())
            .ok_or(TkmError::UnknownQuery(id))
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        check_dims(shared, query)?;
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
            None,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.space_bytes()
            + self.queries.overhead_bytes()
            + (self.changed.capacity() * std::mem::size_of::<QueryId>())
            + (self.affected.capacity() * std::mem::size_of::<QuerySlot>())
            + self
                .queries
                .iter()
                .map(|(_, q)| std::mem::size_of::<SmaQuery>() + q.skyband.space_bytes())
                .sum::<usize>()
    }
}
