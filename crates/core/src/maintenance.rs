//! Per-query maintenance stages, decoupled from tuple ingest.
//!
//! A [`QueryMaintenance`] value owns everything that is *per-query*: the
//! queries themselves, their result book-keeping (top-lists for TMA,
//! skybands for SMA), the influence lists covering them, and the traversal
//! scratch. It never mutates the shared window or grid — every cycle it
//! *replays* the `(cell, tuple)` event lists recorded by
//! [`IngestState::ingest`] against an immutable `&IngestState` view. That
//! is what makes the stage shardable: partition the queries over several
//! `QueryMaintenance` values and run [`QueryMaintenance::apply_events`] on
//! each from its own thread, all reading the same window and grid.
//!
//! [`TmaMaintenance`] and [`SmaMaintenance`] are the paper's two
//! maintenance modules (Figures 9 and 11) restated over event lists; the
//! single-engine monitors [`crate::TmaMonitor`] / [`crate::SmaMonitor`] are
//! thin ingest+maintenance sandwiches, so the sharded and unsharded paths
//! execute literally the same maintenance code.
//!
//! One deliberate difference from the interleaved originals: an arrival
//! that expires within its own cycle (count window overrun by a burst) is
//! skipped instead of being offered and then removed. Such a tuple is
//! evicted only after every older tuple (windows are FIFO), so skipping it
//! never hides a result candidate, and the recompute-on-expiry path
//! restores exactness for whatever the burst displaced — the differential
//! suite pins sharded and unsharded results to the oracle either way.

use std::collections::BTreeMap;

use crate::compute::{compute_topk, ComputeScratch};
use crate::influence::{cleanup_from_frontier, remove_query_walk};
use crate::ingest::IngestState;
use crate::query::Query;
use crate::result::TopList;
use crate::stats::EngineStats;
use tkm_common::{QueryId, Result, Scored, TkmError};
use tkm_grid::InfluenceTable;
use tkm_skyband::Skyband;

/// One shard's worth of per-query monitoring state.
///
/// Implementations must be [`Send`] so a sharded monitor can drive them
/// from scoped threads; the shared state they read is only borrowed
/// immutably.
pub trait QueryMaintenance: Send {
    /// Label reported by a shared-ingest sharded monitor built on this
    /// maintenance stage.
    const SHARED_LABEL: &'static str;

    /// Creates an empty maintenance stage sized for `shared`'s grid.
    fn new_for(shared: &IngestState) -> Self
    where
        Self: Sized;

    /// Registers a query and computes its initial result against the
    /// current shared window.
    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()>;

    /// Terminates a query, clearing its influence-list entries.
    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()>;

    /// Replays the shared state's last recorded cycle (arrival events, then
    /// expiry events, then recomputation of affected queries) against this
    /// stage's queries.
    fn apply_events(&mut self, shared: &IngestState) -> Result<()>;

    /// The current top-k result of a query, best first.
    fn result(&self, id: QueryId) -> Result<Vec<Scored>>;

    /// One-shot top-k over the shared window, leaving no state behind.
    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>>;

    /// Number of queries maintained by this stage.
    fn query_count(&self) -> usize;

    /// This stage's influence lists (read access, for diagnostics).
    fn influence(&self) -> &InfluenceTable;

    /// Cumulative maintenance-side counters (stream-side counters live in
    /// [`IngestState::stats`]).
    fn stats(&self) -> EngineStats;

    /// Deep size estimate of the per-query state in bytes.
    fn space_bytes(&self) -> usize;
}

#[derive(Debug)]
struct TmaQuery {
    query: Query,
    top: TopList,
    affected: bool,
}

/// TMA maintenance (paper Figure 9): exact top-k lists, recomputed from
/// scratch when a result tuple expires.
#[derive(Debug)]
pub struct TmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: BTreeMap<QueryId, TmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
}

impl TmaMaintenance {
    /// The current top-k result of a query as a borrowed slice.
    pub fn result_slice(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(&id)
            .map(|q| q.top.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// Queries whose result changed during the last cycle (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }
}

impl QueryMaintenance for TmaMaintenance {
    const SHARED_LABEL: &'static str = "TMA-SHARED";

    fn new_for(shared: &IngestState) -> TmaMaintenance {
        let cells = shared.grid().num_cells();
        TmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: BTreeMap::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != shared.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: shared.dims(),
                got: query.dims(),
            });
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch.stamps,
            shared.window(),
            Some((&mut self.influence, id)),
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        self.stats.recomputations += 1;
        self.stats.cells_processed += out.stats.cells_processed;
        self.stats.points_scanned += out.stats.points_scanned;
        self.stats.heap_pushes += out.stats.heap_pushes;
        self.queries.insert(
            id,
            TmaQuery {
                query,
                top: out.top,
                affected: false,
            },
        );
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let st = self.queries.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch.stamps,
            id,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();

        // ---- Pins (Figure 9, lines 3-7) ----
        {
            let Self {
                influence,
                queries,
                stats,
                changed,
                ..
            } = self;
            for &(cell, id) in shared.arrival_events() {
                // A same-cycle transient (already expired): cannot be in the
                // final window, so it never has to enter a top-list.
                let Some(coords) = shared.window().coords(id) else {
                    continue;
                };
                for qid in influence.iter(cell) {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if let Some(r) = &st.query.constraint {
                        if !r.contains(coords) {
                            continue;
                        }
                    }
                    let score = st.query.f.score(coords);
                    // threshold() is −∞ while the list is short, so this
                    // single test covers the warm-up phase too.
                    if score >= st.top.threshold() && st.top.offer(Scored::new(score, id)) {
                        stats.result_updates += 1;
                        changed.push(qid);
                    }
                }
            }

            // ---- Pdel (lines 8-11) ----
            for &(cell, id) in shared.expiry_events() {
                for qid in influence.iter(cell) {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if st.top.remove(id) {
                        st.affected = true;
                    }
                }
            }
        }

        // ---- Recompute affected queries (lines 12-21) ----
        let affected: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, st)| st.affected)
            .map(|(id, _)| *id)
            .collect();
        for qid in affected {
            let st = self.queries.get_mut(&qid).expect("collected above");
            st.affected = false;
            let out = compute_topk(
                shared.grid(),
                &mut self.scratch.stamps,
                shared.window(),
                Some((&mut self.influence, qid)),
                &st.query.f,
                st.query.k,
                st.query.constraint.as_ref(),
                false,
            );
            self.stats.recomputations += 1;
            self.stats.cells_processed += out.stats.cells_processed;
            self.stats.points_scanned += out.stats.points_scanned;
            self.stats.heap_pushes += out.stats.heap_pushes;
            st.top = out.top;
            self.stats.cleanup_cells += cleanup_from_frontier(
                shared.grid(),
                &mut self.influence,
                &mut self.scratch.stamps,
                qid,
                &st.query.f,
                st.query.constraint.as_ref(),
                &out.frontier,
            );
            self.changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.result_slice(id).map(<[Scored]>::to_vec)
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        if query.dims() != shared.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: shared.dims(),
                got: query.dims(),
            });
        }
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch.stamps,
            shared.window(),
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.stamps.space_bytes()
            + self
                .queries
                .values()
                .map(|q| std::mem::size_of::<TmaQuery>() + q.top.space_bytes())
                .sum::<usize>()
    }
}

#[derive(Debug)]
struct SmaQuery {
    query: Query,
    skyband: Skyband,
    /// k-th score at the last from-scratch computation; the skyband
    /// admission threshold (−∞ until the window holds k candidates).
    top_score: f64,
    touched: bool,
}

/// SMA maintenance (paper Figure 11): k-skyband upkeep in (score,
/// expiry-time) space, recomputing only on deficiency.
#[derive(Debug)]
pub struct SmaMaintenance {
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: BTreeMap<QueryId, SmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
}

impl SmaMaintenance {
    /// Runs the computation module for `qid` and reseeds its skyband.
    fn recompute(
        influence: &mut InfluenceTable,
        scratch: &mut ComputeScratch,
        shared: &IngestState,
        stats: &mut EngineStats,
        qid: QueryId,
        st: &mut SmaQuery,
    ) {
        let out = compute_topk(
            shared.grid(),
            &mut scratch.stamps,
            shared.window(),
            Some((influence, qid)),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            true,
        );
        stats.recomputations += 1;
        stats.cells_processed += out.stats.cells_processed;
        stats.points_scanned += out.stats.points_scanned;
        stats.heap_pushes += out.stats.heap_pushes;
        // Seed the skyband with the top-k plus the candidates tying the
        // k-th score: a tie-loser outlives the tied result member and can
        // enter a future result, so dropping it would lose exactness.
        let mut seed: Vec<Scored> = Vec::with_capacity(out.top.len() + out.boundary_ties.len());
        seed.extend_from_slice(out.top.as_slice());
        seed.extend_from_slice(&out.boundary_ties);
        st.skyband.rebuild(&seed);
        st.top_score = out.top.threshold();
        stats.cleanup_cells += cleanup_from_frontier(
            shared.grid(),
            influence,
            &mut scratch.stamps,
            qid,
            &st.query.f,
            st.query.constraint.as_ref(),
            &out.frontier,
        );
    }

    /// Current skyband size of a query (Table 2 reports its average).
    pub fn skyband_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(&id)
            .map(|q| q.skyband.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Mean skyband size across queries.
    pub fn avg_skyband_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .values()
            .map(|q| q.skyband.len())
            .sum::<usize>() as f64
            / self.queries.len() as f64
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// Queries whose skyband changed during the last cycle (sorted,
    /// deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }
}

impl QueryMaintenance for SmaMaintenance {
    const SHARED_LABEL: &'static str = "SMA-SHARED";

    fn new_for(shared: &IngestState) -> SmaMaintenance {
        let cells = shared.grid().num_cells();
        SmaMaintenance {
            influence: InfluenceTable::new(cells),
            scratch: ComputeScratch::new(cells),
            queries: BTreeMap::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
        }
    }

    fn register_query(&mut self, shared: &IngestState, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != shared.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: shared.dims(),
                got: query.dims(),
            });
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let mut st = SmaQuery {
            skyband: Skyband::new(query.k)?,
            query,
            top_score: f64::NEG_INFINITY,
            touched: false,
        };
        Self::recompute(
            &mut self.influence,
            &mut self.scratch,
            shared,
            &mut self.stats,
            id,
            &mut st,
        );
        self.queries.insert(id, st);
        Ok(())
    }

    fn remove_query(&mut self, shared: &IngestState, id: QueryId) -> Result<()> {
        let st = self.queries.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.stats.cleanup_cells += remove_query_walk(
            shared.grid(),
            &mut self.influence,
            &mut self.scratch.stamps,
            id,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    fn apply_events(&mut self, shared: &IngestState) -> Result<()> {
        self.changed.clear();

        // ---- Pins (Figure 11, lines 4-11) ----
        {
            let Self {
                influence,
                queries,
                stats,
                ..
            } = self;
            for &(cell, id) in shared.arrival_events() {
                let Some(coords) = shared.window().coords(id) else {
                    continue; // same-cycle transient, see module docs
                };
                for qid in influence.iter(cell) {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if let Some(r) = &st.query.constraint {
                        if !r.contains(coords) {
                            continue;
                        }
                    }
                    let score = st.query.f.score(coords);
                    if score >= st.top_score {
                        st.skyband.insert(Scored::new(score, id));
                        st.touched = true;
                        stats.result_updates += 1;
                    }
                }
            }

            // ---- Pdel (lines 12-16) ----
            for &(cell, id) in shared.expiry_events() {
                for qid in influence.iter(cell) {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if st.skyband.expire(id) {
                        st.touched = true;
                    }
                }
            }
        }

        // ---- Deficiency handling (lines 17-22) ----
        let touched: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, st)| st.touched)
            .map(|(id, _)| *id)
            .collect();
        for qid in touched {
            let st = self.queries.get_mut(&qid).expect("collected above");
            st.touched = false;
            // Recompute only if the skyband lost too many entries AND the
            // window could supply more (a window smaller than k can never
            // fill the band — recomputing every tick would be wasted work,
            // and the influence lists already cover the whole grid then).
            if st.skyband.is_deficient() && st.skyband.len() < shared.window().len() {
                Self::recompute(
                    &mut self.influence,
                    &mut self.scratch,
                    shared,
                    &mut self.stats,
                    qid,
                    st,
                );
            }
            self.changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.queries
            .get(&id)
            .map(|q| q.skyband.top().iter().map(|e| e.scored).collect())
            .ok_or(TkmError::UnknownQuery(id))
    }

    fn snapshot(&mut self, shared: &IngestState, query: &Query) -> Result<Vec<Scored>> {
        if query.dims() != shared.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: shared.dims(),
                got: query.dims(),
            });
        }
        let out = compute_topk(
            shared.grid(),
            &mut self.scratch.stamps,
            shared.window(),
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        Ok(out.top.as_slice().to_vec())
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn influence(&self) -> &InfluenceTable {
        &self.influence
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.influence.space_bytes()
            + self.scratch.stamps.space_bytes()
            + self
                .queries
                .values()
                .map(|q| std::mem::size_of::<SmaQuery>() + q.skyband.space_bytes())
                .sum::<usize>()
    }
}
