//! Continuous query definitions.

use tkm_common::{Rect, Result, ScoreFn, TkmError};

/// A continuous top-k query: a monotone preference function, a result size,
/// and (optionally, §7) an axis-parallel constraint region restricting the
/// monitored tuples.
#[derive(Clone, Debug)]
pub struct Query {
    /// The monotone preference function.
    pub f: ScoreFn,
    /// Result cardinality `k`.
    pub k: usize,
    /// Optional constraint region: only tuples inside are considered.
    pub constraint: Option<Rect>,
}

impl Query {
    /// Builds an unconstrained top-k query.
    pub fn top_k(f: ScoreFn, k: usize) -> Result<Query> {
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "Query: k must be positive".into(),
            ));
        }
        Ok(Query {
            f,
            k,
            constraint: None,
        })
    }

    /// Builds a constrained top-k query (paper §7): only tuples inside
    /// `region` are monitored.
    pub fn constrained(f: ScoreFn, k: usize, region: Rect) -> Result<Query> {
        if region.dims() != f.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: f.dims(),
                got: region.dims(),
            });
        }
        let mut q = Query::top_k(f, k)?;
        q.constraint = Some(region);
        Ok(q)
    }

    /// Dimensionality of the query's function.
    #[inline]
    pub fn dims(&self) -> usize {
        self.f.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        assert!(Query::top_k(f.clone(), 0).is_err());
        let q = Query::top_k(f.clone(), 3).unwrap();
        assert_eq!(q.k, 3);
        assert!(q.constraint.is_none());

        let r = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let q = Query::constrained(f.clone(), 2, r).unwrap();
        assert!(q.constraint.is_some());

        let bad = Rect::new(vec![0.0], vec![0.5]).unwrap();
        assert!(Query::constrained(f, 2, bad).is_err());
    }
}
