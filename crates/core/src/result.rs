//! Bounded top-k result lists.
//!
//! TMA stores, per query, the exact current top-k set ordered best-first
//! (`q.top_list` in the paper, with `q.top_score` = score of its k-th
//! element). The list is tiny (k ≤ a few hundred), so a sorted vector with
//! binary-search insertion is the right structure.

use tkm_common::{OrderedF64, QueryId, Scored, TupleId};

/// The change of one query's result across a processing cycle — the
/// "changes reported to the client" of Figures 9 and 11.
#[derive(Clone, Debug, PartialEq, Eq)]
// lint: allow(space, reason=per-tick API value drained by the client, not resident engine state)
pub struct ResultDelta {
    /// The query whose result changed.
    pub query: QueryId,
    /// Tuples that entered the top-k, best first.
    pub added: Vec<Scored>,
    /// Tuples that left the top-k, best first.
    pub removed: Vec<Scored>,
}

impl ResultDelta {
    /// Whether nothing actually changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Applies this delta to a client-side mirror of the result list,
    /// keeping it best-first.
    ///
    /// This is the inverse of [`ResultDelta::diff`]: a subscriber that
    /// starts from a snapshot of `result()` and applies every subsequent
    /// delta in order reconstructs `result()` exactly (the contract pinned
    /// by `tests/delta_replay.rs` and relied on by the `tkm_service` wire
    /// protocol). Removals that are not present and additions that already
    /// are leave the mirror unchanged, so re-applying a delta after a
    /// snapshot resync is harmless.
    pub fn apply(&self, mirror: &mut Vec<Scored>) {
        for gone in &self.removed {
            if let Some(pos) = mirror.iter().position(|e| e == gone) {
                mirror.remove(pos);
            }
        }
        for fresh in &self.added {
            let pos = mirror.partition_point(|e| e > fresh);
            if mirror.get(pos) != Some(fresh) {
                mirror.insert(pos, *fresh);
            }
        }
    }

    /// Diffs two best-first result lists. Scores are immutable per tuple,
    /// so a single merge pass over the sorted lists suffices.
    pub fn diff(query: QueryId, old: &[Scored], new: &[Scored]) -> ResultDelta {
        debug_assert!(old.windows(2).all(|w| w[0] > w[1]));
        debug_assert!(new.windows(2).all(|w| w[0] > w[1]));
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < new.len() {
            match new[j].cmp(&old[i]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Greater => {
                    added.push(new[j]);
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    removed.push(old[i]);
                    i += 1;
                }
            }
        }
        added.extend_from_slice(&new[j..]);
        removed.extend_from_slice(&old[i..]);
        ResultDelta {
            query,
            added,
            removed,
        }
    }
}

/// A best-first list of at most `k` scored tuples.
///
/// The [`Default`] value is a hollow placeholder (`k = 0`, no buffers) used
/// only as the swap-out value when an engine recycles a query's previous
/// result list into a recomputation (`std::mem::take`); it is never
/// offered to.
#[derive(Clone, Debug, Default)]
pub struct TopList {
    k: usize,
    entries: Vec<Scored>,
    /// Evicted/rejected boundary candidates collected by the computation
    /// module when tie tracking is enabled (see `compute`).
    pub(crate) pool: Vec<Scored>,
    track_ties: bool,
}

impl TopList {
    /// Creates an empty list with capacity `k ≥ 1`.
    pub fn new(k: usize) -> TopList {
        debug_assert!(k > 0);
        TopList {
            k,
            entries: Vec::with_capacity(k),
            pool: Vec::new(),
            track_ties: false,
        }
    }

    /// Creates a list that additionally collects candidates displaced at
    /// the k-th boundary (needed by SMA's skyband seeding under ties).
    pub fn with_tie_tracking(k: usize) -> TopList {
        let mut t = TopList::new(k);
        t.track_ties = true;
        t
    }

    /// Re-initialises the list for a fresh computation, keeping the entry
    /// and pool buffers (the engines recompute thousands of queries per
    /// tick; recycling the old result's allocation keeps that loop free of
    /// `malloc`).
    pub fn reset(&mut self, k: usize, track_ties: bool) {
        debug_assert!(k > 0);
        self.k = k;
        self.track_ties = track_ties;
        self.entries.clear();
        self.pool.clear();
        self.entries.reserve(k);
    }

    /// Result size bound.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of entries (≤ k).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the list holds `k` entries.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// The entries, best first.
    #[inline]
    pub fn as_slice(&self) -> &[Scored] {
        &self.entries
    }

    /// The k-th (worst retained) entry when full.
    #[inline]
    pub fn kth(&self) -> Option<Scored> {
        self.is_full().then(|| self.entries[self.k - 1])
    }

    /// The score below which a tuple cannot affect the result
    /// (`q.top_score`): the k-th score when full, −∞ otherwise.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.kth().map_or(f64::NEG_INFINITY, |s| s.score.get())
    }

    /// Whether a tuple id is present (O(k) scan).
    pub fn contains(&self, id: TupleId) -> bool {
        self.entries.iter().any(|e| e.id == id)
    }

    /// Offers a candidate; inserts it if it belongs in the top-k, evicting
    /// the current k-th if full. Returns `true` when the list changed.
    pub fn offer(&mut self, s: Scored) -> bool {
        if self.is_full() {
            let worst = self.entries[self.k - 1];
            if s <= worst {
                // Rejected at the boundary: remember exact score ties for
                // skyband seeding.
                if self.track_ties && s.score == worst.score {
                    self.pool.push(s);
                }
                return false;
            }
            let pos = self.entries.partition_point(|e| *e > s);
            self.entries.insert(pos, s);
            if let Some(evicted) = self.entries.pop() {
                if self.track_ties {
                    self.pool.push(evicted);
                    self.prune_pool();
                }
            }
            true
        } else {
            let pos = self.entries.partition_point(|e| *e > s);
            self.entries.insert(pos, s);
            true
        }
    }

    /// Removes an entry by id; returns `true` if present.
    pub fn remove(&mut self, id: TupleId) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Clears entries (and the tie pool).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.pool.clear();
    }

    /// Boundary ties: candidates outside the top-k whose score equals the
    /// k-th score, descending (only meaningful with tie tracking).
    pub fn boundary_ties(&self) -> Vec<Scored> {
        let Some(kth) = self.kth() else {
            return Vec::new();
        };
        let mut ties: Vec<Scored> = self
            .pool
            .iter()
            .copied()
            .filter(|s| s.score == kth.score)
            .collect();
        ties.sort_by(|a, b| b.cmp(a));
        ties.dedup();
        ties
    }

    /// Keeps the tie pool from growing past O(k) by discarding candidates
    /// that can no longer tie the k-th score.
    fn prune_pool(&mut self) {
        if self.pool.len() > 4 * self.k + 16 {
            let kth_score: OrderedF64 = self.entries[self.k - 1].score;
            self.pool.retain(|s| s.score >= kth_score);
        }
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + (self.entries.capacity() + self.pool.capacity()) * std::mem::size_of::<Scored>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(score: f64, id: u64) -> Scored {
        Scored::new(score, TupleId(id))
    }

    #[test]
    fn delta_diff_cases() {
        let q = QueryId(1);
        // Identical lists → empty delta.
        let a = [s(0.9, 0), s(0.5, 1)];
        let d = ResultDelta::diff(q, &a, &a);
        assert!(d.is_empty());

        // Replacement in the middle.
        let b = [s(0.9, 0), s(0.7, 2)];
        let d = ResultDelta::diff(q, &a, &b);
        assert_eq!(d.added, vec![s(0.7, 2)]);
        assert_eq!(d.removed, vec![s(0.5, 1)]);

        // Growth from empty and shrink to empty.
        let d = ResultDelta::diff(q, &[], &a);
        assert_eq!(d.added, a.to_vec());
        assert!(d.removed.is_empty());
        let d = ResultDelta::diff(q, &a, &[]);
        assert_eq!(d.removed, a.to_vec());

        // Same score, different tuple (tie replacement by age).
        let c = [s(0.9, 0), s(0.5, 3)];
        let d = ResultDelta::diff(q, &a, &c);
        assert_eq!(d.added, vec![s(0.5, 3)]);
        assert_eq!(d.removed, vec![s(0.5, 1)]);
    }

    #[test]
    fn apply_inverts_diff() {
        let q = QueryId(0);
        let old = vec![s(0.9, 0), s(0.5, 1), s(0.3, 2)];
        let new = vec![s(0.9, 0), s(0.7, 4), s(0.5, 3)];
        let delta = ResultDelta::diff(q, &old, &new);
        let mut mirror = old.clone();
        delta.apply(&mut mirror);
        assert_eq!(mirror, new);

        // Idempotent: re-applying after a resync changes nothing.
        delta.apply(&mut mirror);
        assert_eq!(mirror, new);

        // From empty and to empty.
        let mut mirror = Vec::new();
        ResultDelta::diff(q, &[], &new).apply(&mut mirror);
        assert_eq!(mirror, new);
        ResultDelta::diff(q, &new, &[]).apply(&mut mirror);
        assert!(mirror.is_empty());
    }

    #[test]
    fn keeps_best_k() {
        let mut t = TopList::new(2);
        assert!(t.offer(s(0.3, 0)));
        assert!(t.offer(s(0.5, 1)));
        assert!(t.is_full());
        assert!(t.offer(s(0.4, 2)), "displaces the 0.3");
        assert!(!t.offer(s(0.2, 3)));
        let scores: Vec<f64> = t.as_slice().iter().map(|e| e.score.get()).collect();
        assert_eq!(scores, vec![0.5, 0.4]);
        assert_eq!(t.threshold(), 0.4);
    }

    #[test]
    fn threshold_is_neg_infinity_until_full() {
        let mut t = TopList::new(3);
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        t.offer(s(0.9, 0));
        assert_eq!(t.threshold(), f64::NEG_INFINITY);
        assert_eq!(t.kth(), None);
    }

    #[test]
    fn tie_goes_to_older() {
        let mut t = TopList::new(1);
        t.offer(s(0.5, 0));
        assert!(!t.offer(s(0.5, 1)), "newer tuple loses the tie");
        assert_eq!(t.as_slice()[0].id, TupleId(0));
    }

    #[test]
    fn remove_by_id() {
        let mut t = TopList::new(3);
        t.offer(s(0.1, 0));
        t.offer(s(0.2, 1));
        assert!(t.remove(TupleId(0)));
        assert!(!t.remove(TupleId(0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn boundary_tie_collection() {
        let mut t = TopList::with_tie_tracking(2);
        t.offer(s(0.9, 0));
        t.offer(s(0.5, 1));
        t.offer(s(0.5, 2)); // rejected, ties the k-th
        t.offer(s(0.5, 3)); // rejected, ties the k-th
        t.offer(s(0.2, 4)); // rejected, no tie
        let ties = t.boundary_ties();
        let ids: Vec<u64> = ties.iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![2, 3], "ties sorted best-first (older first)");
    }

    #[test]
    fn eviction_lands_in_pool_when_tracking() {
        let mut t = TopList::with_tie_tracking(1);
        t.offer(s(0.5, 0));
        t.offer(s(0.5, 1)); // rejected tie
        t.offer(s(0.7, 2)); // evicts the 0.5/id0
                            // Boundary ties are relative to the *new* k-th (0.7): none.
        assert!(t.boundary_ties().is_empty());
        // But if another 0.7 arrives it is captured.
        t.offer(s(0.7, 3));
        assert_eq!(t.boundary_ties().len(), 1);
    }

    #[test]
    fn pool_is_pruned() {
        let mut t = TopList::with_tie_tracking(1);
        // Monotonically improving offers: every one evicts its predecessor
        // into the pool, which must not grow without bound.
        for i in 0..200u64 {
            t.offer(s(i as f64 / 1000.0, i));
        }
        assert!(t.pool.len() <= 4 + 16, "pool pruned, was {}", t.pool.len());
        assert!(t.boundary_ties().is_empty());
    }
}
