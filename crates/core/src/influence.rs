//! Influence-list clean-up walks (paper §4.3, Figure 9 lines 14–21).
//!
//! Influence lists are maintained lazily: result improvements shrink a
//! query's influence region without touching the lists, so stale entries
//! accumulate in cells between the old and the new region boundary. After
//! every from-scratch computation the stale band is swept with a list-based
//! walk: seeded with the cells left in the computation heap (the *frontier*
//! — en-heaped but not processed, i.e. just below the new region), the walk
//! removes the query from a cell and expands to the cell's worse
//! neighbours only where the query was actually registered. Because
//! influence regions are staircase-shaped (closed toward the preferred
//! corner), this reaches every stale cell and stops immediately at the old
//! boundary.
//!
//! The same walk with the best-corner cell as seed clears *all* entries of
//! a terminating query. Sweeping every entry before a dense slot is freed
//! is what makes slot recycling in [`crate::registry::QueryRegistry`]
//! safe: a recycled slot can never inherit a dead query's influence
//! entries.
//!
//! The walks read the grid (geometry only) and mutate the caller's
//! [`InfluenceTable`] — the grid itself stays immutable, so shards of a
//! shared-ingest monitor can sweep their own tables concurrently. Both
//! walks run entirely inside the caller's [`ComputeScratch`]:
//! [`cleanup_from_frontier`] consumes [`ComputeScratch::frontier`] (left
//! behind by the preceding [`crate::compute::compute_topk`] call) in place
//! as its worklist, so a steady-state recompute-and-sweep cycle performs
//! no allocation.

use crate::compute::ComputeScratch;
use tkm_common::{QuerySlot, Rect, ScoreFn};
use tkm_grid::{CellId, Grid, InfluenceTable, VisitStamps};

/// Sweeps stale influence-list entries of `slot` downward from the
/// frontier recorded in `scratch` by the preceding computation.
///
/// `scratch.stamps` must still be in the epoch of that computation (its
/// marks prevent the walk from re-entering the freshly processed region);
/// `scratch.frontier` is drained by the walk. Returns the number of cells
/// visited.
// lint: hot-path
pub fn cleanup_from_frontier(
    grid: &Grid,
    influence: &mut InfluenceTable,
    scratch: &mut ComputeScratch,
    slot: QuerySlot,
    f: &ScoreFn,
    constraint: Option<&Rect>,
) -> u64 {
    let range = constraint.map(|r| grid.cell_range(r));
    let ComputeScratch {
        stamps, frontier, ..
    } = scratch;
    let mut visited = 0;
    while let Some(cell) = frontier.pop() {
        visited += 1;
        if !influence.remove(cell, slot) {
            // The query never influenced this cell: nothing below it can be
            // stale either (influence regions are upward-closed).
            continue;
        }
        push_worse_neighbours(grid, stamps, f, range.as_ref(), cell, frontier);
    }
    visited
}

/// Sweeps stale influence-list entries of a whole recomputation group
/// downward from the shared frontier left by the preceding
/// [`crate::compute::compute_topk_group`] call.
///
/// One walk serves every member: a cell is expanded to its worse
/// neighbours when *any* slot was removed from it, so the walk traces the
/// union of the members' stale bands (all members share per-axis
/// monotonicity — `f` may be any member's function). Like
/// [`cleanup_from_frontier`], it requires `scratch.stamps` to still be in
/// the epoch of that group traversal: the marks stop the walk from
/// re-entering the freshly processed envelope, whose stale entries the
/// group's influence post-pass already removed. Returns cells visited.
// lint: hot-path
pub fn cleanup_group_from_frontier(
    grid: &Grid,
    influence: &mut InfluenceTable,
    scratch: &mut ComputeScratch,
    slots: &[QuerySlot],
    f: &ScoreFn,
) -> u64 {
    let ComputeScratch {
        stamps, frontier, ..
    } = scratch;
    let mut visited = 0;
    while let Some(cell) = frontier.pop() {
        visited += 1;
        let mut any = false;
        for &slot in slots {
            // No short-circuit: every member's stale entry in this cell
            // must go, not just the first one found.
            any |= influence.remove(cell, slot);
        }
        if any {
            push_worse_neighbours(grid, stamps, f, None, cell, frontier);
        }
    }
    visited
}

/// Removes `slot` from every influence list (query termination). Walks
/// from the query's best-corner cell; returns the number of cells visited.
pub fn remove_query_walk(
    grid: &Grid,
    influence: &mut InfluenceTable,
    scratch: &mut ComputeScratch,
    slot: QuerySlot,
    f: &ScoreFn,
    constraint: Option<&Rect>,
) -> u64 {
    let range = constraint.map(|r| grid.cell_range(r));
    let start = match &range {
        Some(r) => grid.best_corner_in(r, f),
        None => grid.best_corner(f),
    };
    let ComputeScratch {
        stamps, frontier, ..
    } = scratch;
    stamps.begin();
    stamps.mark(start);
    frontier.clear();
    frontier.push(start);
    let mut visited = 0;
    while let Some(cell) = frontier.pop() {
        visited += 1;
        if !influence.remove(cell, slot) {
            continue;
        }
        push_worse_neighbours(grid, stamps, f, range.as_ref(), cell, frontier);
    }
    visited
}

type CellRange = ([usize; tkm_common::MAX_DIMS], [usize; tkm_common::MAX_DIMS]);

fn push_worse_neighbours(
    grid: &Grid,
    stamps: &mut VisitStamps,
    f: &ScoreFn,
    range: Option<&CellRange>,
    cell: CellId,
    list: &mut Vec<CellId>,
) {
    for dim in 0..grid.dims() {
        let next = match range {
            Some(r) => grid.step_worse_in(cell, dim, f, r),
            None => grid.step_worse(cell, dim, f),
        };
        if let Some(n) = next {
            if stamps.mark(n) {
                list.push(n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::{compute_topk, InfluenceUpdate};
    use tkm_common::Timestamp;
    use tkm_grid::CellMode;
    use tkm_window::{Window, WindowSpec};

    fn listed_cells(grid: &Grid, influence: &InfluenceTable, slot: QuerySlot) -> Vec<u32> {
        (0..grid.num_cells() as u32)
            .filter(|i| influence.contains(CellId(*i), slot))
            .collect()
    }

    /// After a recomputation with a *higher* threshold, the frontier walk
    /// must remove exactly the stale band: cells of the old region that are
    /// not in the new one.
    #[test]
    fn frontier_walk_removes_stale_band() {
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let mut grid = Grid::new(2, 7, CellMode::Fifo).unwrap();
        let mut influence = InfluenceTable::new(grid.num_cells());
        let mut scratch = ComputeScratch::new(grid.num_cells());
        let mut w = Window::new(2, WindowSpec::Count(16)).unwrap();
        let q = QuerySlot(9);

        // Weak initial point → large influence region.
        let id0 = w.insert(&[0.3, 0.3], Timestamp(0)).unwrap();
        grid.insert_point(&[0.3, 0.3], id0);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, q)),
            &f,
            1,
            None,
            false,
            None,
        );
        let old_region = listed_cells(&grid, &influence, q);
        assert!(old_region.len() > 20, "weak top-1 floods most of the grid");
        let _ = out;

        // A strong point arrives → much smaller region after recompute.
        let id1 = w.insert(&[0.9, 0.9], Timestamp(1)).unwrap();
        grid.insert_point(&[0.9, 0.9], id1);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, q)),
            &f,
            1,
            None,
            false,
            None,
        );
        cleanup_from_frontier(&grid, &mut influence, &mut scratch, q, &f, None);

        // Remaining entries = exactly the cells with maxscore ≥ new
        // threshold (the new influence region).
        let threshold = out.top.threshold();
        let want: Vec<u32> = (0..grid.num_cells() as u32)
            .filter(|i| grid.maxscore(CellId(*i), &f) >= threshold)
            .collect();
        let mut got = listed_cells(&grid, &influence, q);
        got.sort_unstable();
        assert_eq!(got, want);
    }

    /// One group walk must sweep the stale bands of *all* members: after a
    /// shared recomputation raised both thresholds, the surviving entries
    /// of each member are exactly its new influence region.
    #[test]
    fn group_frontier_walk_removes_both_stale_bands() {
        let f1 = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let f2 = ScoreFn::linear(vec![2.0, 1.0]).unwrap();
        let mut grid = Grid::new(2, 7, CellMode::Fifo).unwrap();
        let mut influence = InfluenceTable::new(grid.num_cells());
        let mut scratch = ComputeScratch::new(grid.num_cells());
        let mut w = Window::new(2, WindowSpec::Count(16)).unwrap();
        let (q1, q2) = (QuerySlot(1), QuerySlot(2));

        // Weak initial point → large influence regions for both queries.
        let id0 = w.insert(&[0.3, 0.3], Timestamp(0)).unwrap();
        grid.insert_point(&[0.3, 0.3], id0);
        let out1 = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, q1)),
            &f1,
            1,
            None,
            false,
            None,
        );
        let out2 = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, q2)),
            &f2,
            1,
            None,
            false,
            None,
        );

        // A strong point arrives → both regions shrink; recompute the two
        // queries as one group and sweep with one walk.
        let id1 = w.insert(&[0.9, 0.9], Timestamp(1)).unwrap();
        grid.insert_point(&[0.9, 0.9], id1);
        let mut members = vec![
            crate::compute::GroupMember {
                slot: q1,
                f: f1.clone(),
                k: 1,
                listed_above: out1.region_bound,
                keep_superset: false,
                track_ties: false,
                reuse: None,
            },
            crate::compute::GroupMember {
                slot: q2,
                f: f2.clone(),
                k: 1,
                listed_above: out2.region_bound,
                keep_superset: false,
                track_ties: false,
                reuse: None,
            },
        ];
        let mut results = Vec::new();
        crate::compute::compute_topk_group(
            &grid,
            &mut scratch,
            &mut influence,
            &mut members,
            &mut results,
        );
        cleanup_group_from_frontier(&grid, &mut influence, &mut scratch, &[q1, q2], &f1);

        for (f, r, slot) in [(&f1, &results[0], q1), (&f2, &results[1], q2)] {
            let threshold = r.top.threshold();
            let want: Vec<u32> = (0..grid.num_cells() as u32)
                .filter(|i| grid.maxscore(CellId(*i), f) >= threshold)
                .collect();
            let mut got = listed_cells(&grid, &influence, slot);
            got.sort_unstable();
            assert_eq!(got, want, "slot {slot:?}");
        }
    }

    #[test]
    fn removal_walk_clears_everything() {
        let f = ScoreFn::linear(vec![1.0, -0.5]).unwrap();
        let mut grid = Grid::new(2, 6, CellMode::Fifo).unwrap();
        let mut influence = InfluenceTable::new(grid.num_cells());
        let mut scratch = ComputeScratch::new(grid.num_cells());
        let mut w = Window::new(2, WindowSpec::Count(8)).unwrap();
        let q = QuerySlot(4);
        for (i, p) in [[0.2, 0.9], [0.7, 0.4], [0.5, 0.5]].iter().enumerate() {
            let id = w.insert(p, Timestamp(i as u64)).unwrap();
            grid.insert_point(p, id);
        }
        compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, q)),
            &f,
            2,
            None,
            false,
            None,
        );
        assert!(!listed_cells(&grid, &influence, q).is_empty());
        remove_query_walk(&grid, &mut influence, &mut scratch, q, &f, None);
        assert!(listed_cells(&grid, &influence, q).is_empty());
    }

    #[test]
    fn removal_walk_respects_other_queries() {
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let mut grid = Grid::new(2, 5, CellMode::Fifo).unwrap();
        let mut influence = InfluenceTable::new(grid.num_cells());
        let mut scratch = ComputeScratch::new(grid.num_cells());
        let mut w = Window::new(2, WindowSpec::Count(4)).unwrap();
        let id = w.insert(&[0.4, 0.4], Timestamp(0)).unwrap();
        grid.insert_point(&[0.4, 0.4], id);
        compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            1,
            None,
            false,
            None,
        );
        compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(2))),
            &f,
            1,
            None,
            false,
            None,
        );
        remove_query_walk(&grid, &mut influence, &mut scratch, QuerySlot(1), &f, None);
        assert!(listed_cells(&grid, &influence, QuerySlot(1)).is_empty());
        assert!(!listed_cells(&grid, &influence, QuerySlot(2)).is_empty());
    }

    #[test]
    fn constrained_removal_walk() {
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let r = Rect::new(vec![0.2, 0.2], vec![0.6, 0.6]).unwrap();
        let grid = Grid::new(2, 5, CellMode::Fifo).unwrap();
        let mut influence = InfluenceTable::new(grid.num_cells());
        let mut scratch = ComputeScratch::new(grid.num_cells());
        compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            1,
            Some(&r),
            false,
            None,
        );
        assert!(!listed_cells(&grid, &influence, QuerySlot(1)).is_empty());
        remove_query_walk(
            &grid,
            &mut influence,
            &mut scratch,
            QuerySlot(1),
            &f,
            Some(&r),
        );
        assert!(listed_cells(&grid, &influence, QuerySlot(1)).is_empty());
    }
}
