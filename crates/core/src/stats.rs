//! Cumulative counters exposed by the monitoring engines.
//!
//! The counters mirror the cost factors of the paper's §6 analysis, so the
//! `model_vs_measured` experiment can put the analytical model side by side
//! with observed behaviour.

/// Cumulative counters of a grid-based engine (TMA / SMA / variants).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Processing cycles executed.
    pub ticks: u64,
    /// Tuples inserted.
    pub arrivals: u64,
    /// Tuples expired/deleted.
    pub expirations: u64,
    /// Queries whose result was rebuilt from scratch by the top-k
    /// computation module (initial computations plus re-computations).
    /// Formerly `recomputations`: with batched shared recomputation a
    /// single grid traversal can serve several queries, so this counts
    /// *queries served*, not traversals — see `recompute_groups`.
    pub recompute_queries: u64,
    /// Grid traversals launched by the computation module. A solo
    /// recomputation adds 1 to both counters; a shared traversal serving a
    /// group of n queries adds 1 here and n to `recompute_queries`, so
    /// `recompute_groups < recompute_queries` proves batching engaged.
    pub recompute_groups: u64,
    /// Cells de-heaped (processed) by the computation module.
    pub cells_processed: u64,
    /// Points examined inside processed cells.
    pub points_scanned: u64,
    /// Cells pushed onto the computation heap.
    pub heap_pushes: u64,
    /// Cells visited by influence-list clean-up walks.
    pub cleanup_cells: u64,
    /// Arrivals that updated some query's result book-keeping
    /// (top-list insertions for TMA, skyband insertions for SMA).
    pub result_updates: u64,
    /// Per-(cell run × query) influence-list probes: how often a query was
    /// pulled out of a cell's influence list during event replay. With
    /// cell-grouped replay each cell's list is walked once per tick, so
    /// this counts the *bookkeeping* cost of a cycle.
    pub cell_probes: u64,
    /// Per-(tuple × query) probes: entries of a run's coordinate block
    /// streamed through the scoring kernels during event replay (or
    /// removal tests on the expiry side). This is the paper-comparable
    /// "influence probe" count (an event × every query listed in its
    /// cell), identical to what the pre-grouped replay loop counted —
    /// Figure-reproduction binaries report this number.
    pub tuple_probes: u64,
}

impl EngineStats {
    /// Folds the stream-side counters of an ingest stage into these
    /// maintenance-side counters (the split introduced by
    /// [`crate::ingest::IngestState`]).
    pub fn with_ingest(mut self, ingest: crate::ingest::IngestStats) -> EngineStats {
        self.ticks += ingest.ticks;
        self.arrivals += ingest.arrivals;
        self.expirations += ingest.expirations;
        self
    }

    /// Accumulates another stats block field-wise (summing over shards).
    pub fn absorb(&mut self, other: EngineStats) {
        self.ticks += other.ticks;
        self.arrivals += other.arrivals;
        self.expirations += other.expirations;
        self.recompute_queries += other.recompute_queries;
        self.recompute_groups += other.recompute_groups;
        self.cells_processed += other.cells_processed;
        self.points_scanned += other.points_scanned;
        self.heap_pushes += other.heap_pushes;
        self.cleanup_cells += other.cleanup_cells;
        self.result_updates += other.result_updates;
        self.cell_probes += other.cell_probes;
        self.tuple_probes += other.tuple_probes;
    }

    /// The paper's per-(tuple × query) influence-probe count (kept as a
    /// method so callers of the pre-split `influence_probes` field read
    /// the same quantity).
    #[inline]
    pub fn influence_probes(&self) -> u64 {
        self.tuple_probes
    }

    /// Per-query recomputations, summed over queries (kept as a method so
    /// callers of the pre-split `recomputations` field read the same
    /// quantity).
    #[inline]
    pub fn recomputations(&self) -> u64 {
        self.recompute_queries
    }

    /// Recomputations per tick (the measured counterpart of the paper's
    /// `Pr_rec` per query — divide by the query count for the per-query
    /// probability).
    pub fn recomputations_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.recompute_queries as f64 / self.ticks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tick_rate() {
        let mut s = EngineStats::default();
        assert_eq!(s.recomputations_per_tick(), 0.0);
        s.ticks = 4;
        s.recompute_queries = 6;
        assert_eq!(s.recomputations_per_tick(), 1.5);
        assert_eq!(s.recomputations(), 6);
    }

    #[test]
    fn absorb_sums_group_counters() {
        let mut a = EngineStats {
            recompute_queries: 5,
            recompute_groups: 2,
            ..EngineStats::default()
        };
        let b = EngineStats {
            recompute_queries: 3,
            recompute_groups: 3,
            ..EngineStats::default()
        };
        a.absorb(b);
        assert_eq!(a.recompute_queries, 8);
        assert_eq!(a.recompute_groups, 5);
    }
}
