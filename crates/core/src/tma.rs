//! The Top-k Monitoring Algorithm (TMA), paper §4 / Figure 9.
//!
//! Per processing cycle TMA handles the arrival set before the expiry set:
//!
//! 1. **Pins** — each arrival is placed into its grid cell; for every query
//!    registered in the cell's influence list whose threshold the new score
//!    reaches, the tuple is inserted into the query's top-list (displacing
//!    the k-th). Thresholds rise lazily: influence lists are *not* shrunk.
//! 2. **Pdel** — each expiring tuple leaves its cell; queries listing the
//!    cell whose top-list contained the tuple are marked *affected*.
//! 3. Every affected query is recomputed from scratch with the top-k
//!    computation module, followed by the frontier clean-up walk that
//!    removes the query from cells it no longer influences.
//!
//! Recomputances are the cost TMA pays for storing only the exact top-k;
//! SMA trades a slightly larger state (the skyband) for avoiding most of
//! them.

use std::collections::BTreeMap;

use crate::compute::{compute_topk, ComputeScratch};
use crate::influence::{cleanup_from_frontier, remove_query_walk};
use crate::query::Query;
use crate::result::TopList;
use crate::stats::EngineStats;
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_grid::{CellMode, Grid};
use tkm_window::{Window, WindowSpec};

/// How the grid is dimensioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridSpec {
    /// Approximately this many cells in total (`m = round(budget^(1/d))`
    /// per axis) — the paper's sizing rule, default 12⁴.
    CellBudget(usize),
    /// Exactly this many cells per axis.
    PerDim(usize),
}

impl GridSpec {
    /// The paper's default budget of 12⁴ ≈ 20.7k cells.
    pub const DEFAULT_BUDGET: usize = 20_736;

    /// Builds the grid.
    pub fn build(self, dims: usize, mode: CellMode) -> Result<Grid> {
        match self {
            GridSpec::CellBudget(b) => Grid::with_cell_budget(dims, b, mode),
            GridSpec::PerDim(m) => Grid::new(dims, m, mode),
        }
    }
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec::CellBudget(Self::DEFAULT_BUDGET)
    }
}

/// Validates a flat arrival buffer against the workspace.
pub(crate) fn validate_arrivals(dims: usize, arrivals: &[f64]) -> Result<()> {
    if !arrivals.len().is_multiple_of(dims) {
        return Err(TkmError::InvalidParameter(format!(
            "tick: arrival buffer length {} is not a multiple of dims {dims}",
            arrivals.len()
        )));
    }
    if let Some(bad) = arrivals.iter().find(|x| !(0.0..=1.0).contains(*x)) {
        return Err(TkmError::InvalidParameter(format!(
            "tick: coordinate {bad} outside the unit workspace"
        )));
    }
    Ok(())
}

#[derive(Debug)]
struct TmaQuery {
    query: Query,
    top: TopList,
    affected: bool,
}

/// Continuous top-k monitor that recomputes affected queries from scratch
/// (the paper's TMA).
#[derive(Debug)]
pub struct TmaMonitor {
    window: Window,
    grid: Grid,
    scratch: ComputeScratch,
    queries: BTreeMap<QueryId, TmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
}

impl TmaMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<TmaMonitor> {
        let grid = grid.build(dims, CellMode::Fifo)?;
        let scratch = ComputeScratch::new(grid.num_cells());
        Ok(TmaMonitor {
            window: Window::new(dims, window)?,
            grid,
            scratch,
            queries: BTreeMap::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// The underlying grid (read access, for diagnostics).
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Registers a query and computes its initial result.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let out = compute_topk(
            &mut self.grid,
            &mut self.scratch.stamps,
            &self.window,
            Some(id),
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        self.stats.recomputations += 1;
        self.stats.cells_processed += out.stats.cells_processed;
        self.stats.points_scanned += out.stats.points_scanned;
        self.stats.heap_pushes += out.stats.heap_pushes;
        self.queries.insert(
            id,
            TmaQuery {
                query,
                top: out.top,
                affected: false,
            },
        );
        Ok(())
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let st = self.queries.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.stats.cleanup_cells += remove_query_walk(
            &mut self.grid,
            &mut self.scratch.stamps,
            id,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(&id)
            .map(|q| q.top.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Queries whose result changed during the last tick (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }

    /// One-shot (snapshot) top-k over the current window contents, without
    /// registering anything: the computation module runs but leaves no
    /// influence-list entries behind.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        let out = compute_topk(
            &mut self.grid,
            &mut self.scratch.stamps,
            &self.window,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        Ok(out.top.as_slice().to_vec())
    }

    /// Executes one processing cycle (Figure 9). `arrivals` is a flat
    /// coordinate buffer, one tuple per `dims` chunk.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        self.stats.ticks += 1;
        self.changed.clear();

        // ---- Pins (lines 3-7) ----
        {
            let Self {
                window,
                grid,
                queries,
                stats,
                changed,
                ..
            } = self;
            for coords in arrivals.chunks_exact(dims) {
                let id = window.insert(coords, now)?;
                stats.arrivals += 1;
                let cell = grid.insert_point(coords, id);
                for qid in grid.cell(cell).influence_iter() {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if let Some(r) = &st.query.constraint {
                        if !r.contains(coords) {
                            continue;
                        }
                    }
                    let score = st.query.f.score(coords);
                    // threshold() is −∞ while the list is short, so this
                    // single test covers the warm-up phase too.
                    if score >= st.top.threshold() && st.top.offer(Scored::new(score, id)) {
                        stats.result_updates += 1;
                        changed.push(qid);
                    }
                }
            }
        }

        // ---- Pdel (lines 8-11) ----
        {
            let Self {
                window,
                grid,
                queries,
                stats,
                ..
            } = self;
            window.drain_expired(now, |id, coords| {
                stats.expirations += 1;
                let cell = grid
                    .remove_point(coords, id)
                    .expect("window and grid are updated in lockstep");
                for qid in grid.cell(cell).influence_iter() {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if st.top.remove(id) {
                        st.affected = true;
                    }
                }
            });
        }

        // ---- Recompute affected queries (lines 12-21) ----
        let affected: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, st)| st.affected)
            .map(|(id, _)| *id)
            .collect();
        for qid in affected {
            let st = self.queries.get_mut(&qid).expect("collected above");
            st.affected = false;
            let out = compute_topk(
                &mut self.grid,
                &mut self.scratch.stamps,
                &self.window,
                Some(qid),
                &st.query.f,
                st.query.k,
                st.query.constraint.as_ref(),
                false,
            );
            self.stats.recomputations += 1;
            self.stats.cells_processed += out.stats.cells_processed;
            self.stats.points_scanned += out.stats.points_scanned;
            self.stats.heap_pushes += out.stats.heap_pushes;
            st.top = out.top;
            self.stats.cleanup_cells += cleanup_from_frontier(
                &mut self.grid,
                &mut self.scratch.stamps,
                qid,
                &st.query.f,
                st.query.constraint.as_ref(),
                &out.frontier,
            );
            self.changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Deep size estimate in bytes: window + grid (point and influence
    /// lists) + per-query state (`O(d + 2k)` per query as analysed in §6).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.grid.space_bytes()
            + self.scratch.stamps.space_bytes()
            + self
                .queries
                .values()
                .map(|q| std::mem::size_of::<TmaQuery>() + q.top.space_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Rect, ScoreFn};

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute(window: &Window, q: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(q.f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(q.k);
        all
    }

    #[test]
    fn registration_validation() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap();
        let f1 = ScoreFn::linear(vec![1.0]).unwrap();
        let q = Query::top_k(f1, 1).unwrap();
        assert!(m.register_query(QueryId(0), q).is_err(), "dims mismatch");
        let f2 = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let q = Query::top_k(f2, 2).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q),
            Err(TkmError::DuplicateQuery(_))
        ));
        assert!(m.remove_query(QueryId(9)).is_err());
        m.remove_query(QueryId(0)).unwrap();
    }

    #[test]
    fn tracks_brute_force_over_stream() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(8)).unwrap();
        let q1 = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap();
        let q2 = Query::top_k(ScoreFn::linear(vec![1.0, -1.0]).unwrap(), 5).unwrap();
        m.register_query(QueryId(1), q1.clone()).unwrap();
        m.register_query(QueryId(2), q2.clone()).unwrap();
        for tick in 0..50u64 {
            let arrivals = lcg_stream(tick + 1, 8, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(1)).unwrap(), &brute(m.window(), &q1)[..]);
            assert_eq!(m.result(QueryId(2)).unwrap(), &brute(m.window(), &q2)[..]);
        }
        let s = m.stats();
        assert!(s.recomputations > 2, "expiries of results force recomputes");
        assert!(s.cells_processed > 0 && s.cleanup_cells > 0);
    }

    #[test]
    fn constrained_query_tracks_brute_force() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let r = Rect::new(vec![0.2, 0.2], vec![0.7, 0.7]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 3, r).unwrap();
        m.register_query(QueryId(5), q.clone()).unwrap();
        for tick in 0..40u64 {
            let arrivals = lcg_stream(tick + 77, 6, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(5)).unwrap(), &brute(m.window(), &q)[..]);
        }
    }

    #[test]
    fn time_window_tracks_brute_force() {
        let mut m = TmaMonitor::new(3, WindowSpec::Time(5), GridSpec::PerDim(5)).unwrap();
        let q = Query::top_k(ScoreFn::product(vec![0.1, 0.1, 0.1]).unwrap(), 4).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..30u64 {
            let n = 3 + (tick % 4) as usize; // variable rate
            let arrivals = lcg_stream(tick + 13, n, 3);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), &brute(m.window(), &q)[..]);
        }
    }

    #[test]
    fn changed_queries_reported() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 1).unwrap();
        m.register_query(QueryId(3), q).unwrap();
        // First arrival becomes the top-1 → changed.
        m.tick(Timestamp(0), &[0.9, 0.9]).unwrap();
        assert_eq!(m.changed_queries(), &[QueryId(3)]);
        // A hopeless arrival changes nothing.
        m.tick(Timestamp(1), &[0.01, 0.01]).unwrap();
        assert!(m.changed_queries().is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        assert!(m.tick(Timestamp(0), &[0.5]).is_err());
        assert!(m.tick(Timestamp(0), &[0.5, 1.2]).is_err());
        assert!(m.result(QueryId(0)).is_err());
    }

    #[test]
    fn query_removal_clears_influence() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(5)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.tick(Timestamp(0), &lcg_stream(3, 5, 2)).unwrap();
        m.register_query(QueryId(1), q).unwrap();
        m.remove_query(QueryId(1)).unwrap();
        let listed = m
            .grid()
            .cells()
            .filter(|(_, c)| c.influence_contains(QueryId(1)))
            .count();
        assert_eq!(listed, 0);
        // Subsequent ticks must not touch the removed query.
        m.tick(Timestamp(1), &lcg_stream(4, 5, 2)).unwrap();
    }
}
