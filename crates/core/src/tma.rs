//! The Top-k Monitoring Algorithm (TMA), paper §4 / Figure 9.
//!
//! Per processing cycle TMA handles the arrival set before the expiry set:
//!
//! 1. **Pins** — each arrival is placed into its grid cell; for every query
//!    registered in the cell's influence list whose threshold the new score
//!    reaches, the tuple is inserted into the query's top-list (displacing
//!    the k-th). Thresholds rise lazily: influence lists are *not* shrunk.
//! 2. **Pdel** — each expiring tuple leaves its cell; queries listing the
//!    cell whose result book-keeping contained the tuple are marked
//!    *affected*.
//! 3. Affected queries that can no longer serve an exact top-k are
//!    recomputed with the top-k computation module, followed by the
//!    frontier clean-up walk that removes the query from cells it no
//!    longer influences.
//!
//! Recomputations were the cost the paper's TMA paid for storing only the
//! exact top-k. This implementation defaults to the **skyband refill**
//! configuration (paper §8 / the `tkm_tsl` idea applied to the grid
//! engine): each query keeps a [`tkm_skyband::tuned_kmax`]-deep band whose
//! k-prefix is the result, so result expiries refill from the band and a
//! grid traversal happens only when the band itself drains below `k`.
//! Queries that do fall back in the same tick share one grid traversal per
//! monotonicity group (batched shared recomputation, toggled by
//! [`TmaMonitor::set_batched_recompute`]).
//!
//! [`TmaMonitor`] is a thin sandwich of the shared
//! [`crate::ingest::IngestState`] (window + grid, fed once per tick) and a
//! single [`crate::maintenance::TmaMaintenance`] stage — the same
//! maintenance code a [`crate::parallel::SharedParallelMonitor`] partitions
//! across shards.

use crate::ingest::IngestState;
use crate::maintenance::{QueryMaintenance, TmaMaintenance};
use crate::query::Query;
use crate::stats::EngineStats;
use tkm_common::{QueryId, Result, Scored, Timestamp};
use tkm_grid::{CellMode, Grid, InfluenceTable};
use tkm_window::{Window, WindowSpec};

/// How the grid is dimensioned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridSpec {
    /// Approximately this many cells in total (`m = round(budget^(1/d))`
    /// per axis) — the paper's sizing rule, default 12⁴.
    CellBudget(usize),
    /// Exactly this many cells per axis.
    PerDim(usize),
}

impl GridSpec {
    /// The paper's default budget of 12⁴ ≈ 20.7k cells.
    pub const DEFAULT_BUDGET: usize = 20_736;

    /// Builds the grid.
    pub fn build(self, dims: usize, mode: CellMode) -> Result<Grid> {
        match self {
            GridSpec::CellBudget(b) => Grid::with_cell_budget(dims, b, mode),
            GridSpec::PerDim(m) => Grid::new(dims, m, mode),
        }
    }
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec::CellBudget(Self::DEFAULT_BUDGET)
    }
}

/// Continuous top-k monitor that recomputes affected queries from scratch
/// (the paper's TMA).
#[derive(Debug)]
pub struct TmaMonitor {
    shared: IngestState,
    maint: TmaMaintenance,
}

impl TmaMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<TmaMonitor> {
        let shared = IngestState::new(dims, window, grid)?;
        let maint = TmaMaintenance::new_for(&shared);
        Ok(TmaMonitor { shared, maint })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.shared.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        self.shared.window()
    }

    /// The underlying grid (read access, for diagnostics).
    #[inline]
    pub fn grid(&self) -> &Grid {
        self.shared.grid()
    }

    /// The influence lists (read access, for diagnostics).
    #[inline]
    pub fn influence(&self) -> &InfluenceTable {
        self.maint.influence()
    }

    /// The dense slot a live query's influence-list entries carry
    /// (diagnostics).
    #[inline]
    pub fn query_slot(&self, id: QueryId) -> Option<tkm_common::QuerySlot> {
        self.maint.query_slot(id)
    }

    /// Registers a query and computes its initial result.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        self.maint.register_query(&self.shared, id, query)
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        self.maint.remove_query(&self.shared, id)
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.maint.query_ids()
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<&[Scored]> {
        self.maint.result_slice(id)
    }

    /// Queries whose result changed during the last tick (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        self.maint.changed_queries()
    }

    /// Current refill-band size of a query (between `k` and ~`k_max`).
    pub fn band_len(&self, id: QueryId) -> Result<usize> {
        self.maint.band_len(id)
    }

    /// Enables or disables batched shared recomputation (default: on).
    /// With batching off every fallback recomputes solo.
    pub fn set_batched_recompute(&mut self, on: bool) {
        self.maint.set_batched_recompute(on);
    }

    /// One-shot (snapshot) top-k over the current window contents, without
    /// registering anything: the computation module runs but leaves no
    /// influence-list entries behind.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        self.maint.snapshot(&self.shared, query)
    }

    /// Executes one processing cycle (Figure 9). `arrivals` is a flat
    /// coordinate buffer, one tuple per `dims` chunk.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        self.shared.ingest(now, arrivals)?;
        self.maint.apply_events(&self.shared)
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.maint.stats().with_ingest(self.shared.stats())
    }

    /// Deep size estimate in bytes: window + grid + influence lists +
    /// per-query state (`O(d + 2k)` per query as analysed in §6).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.shared.space_bytes() + self.maint.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::TkmError;
    use tkm_common::{Rect, ScoreFn};

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute(window: &Window, q: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(q.f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(q.k);
        all
    }

    #[test]
    fn registration_validation() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap();
        let f1 = ScoreFn::linear(vec![1.0]).unwrap();
        let q = Query::top_k(f1, 1).unwrap();
        assert!(m.register_query(QueryId(0), q).is_err(), "dims mismatch");
        let f2 = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let q = Query::top_k(f2, 2).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q),
            Err(TkmError::DuplicateQuery(_))
        ));
        assert!(m.remove_query(QueryId(9)).is_err());
        m.remove_query(QueryId(0)).unwrap();
    }

    #[test]
    fn tracks_brute_force_over_stream() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(8)).unwrap();
        let q1 = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap();
        let q2 = Query::top_k(ScoreFn::linear(vec![1.0, -1.0]).unwrap(), 5).unwrap();
        m.register_query(QueryId(1), q1.clone()).unwrap();
        m.register_query(QueryId(2), q2.clone()).unwrap();
        for tick in 0..50u64 {
            let arrivals = lcg_stream(tick + 1, 8, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(1)).unwrap(), &brute(m.window(), &q1)[..]);
            assert_eq!(m.result(QueryId(2)).unwrap(), &brute(m.window(), &q2)[..]);
        }
        let s = m.stats();
        assert!(
            s.recompute_queries >= 2,
            "registrations run the computation module"
        );
        assert!(s.cells_processed > 0);
        // The refill band absorbs result expiries: recomputations stay far
        // below the once-per-affected-tick rate of the paper's bare TMA.
        assert!(
            s.recompute_queries <= 20,
            "refill failed to absorb expiries: {} recomputes",
            s.recompute_queries
        );
    }

    #[test]
    fn constrained_query_tracks_brute_force() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let r = Rect::new(vec![0.2, 0.2], vec![0.7, 0.7]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 3, r).unwrap();
        m.register_query(QueryId(5), q.clone()).unwrap();
        for tick in 0..40u64 {
            let arrivals = lcg_stream(tick + 77, 6, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(5)).unwrap(), &brute(m.window(), &q)[..]);
        }
    }

    #[test]
    fn time_window_tracks_brute_force() {
        let mut m = TmaMonitor::new(3, WindowSpec::Time(5), GridSpec::PerDim(5)).unwrap();
        let q = Query::top_k(ScoreFn::product(vec![0.1, 0.1, 0.1]).unwrap(), 4).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..30u64 {
            let n = 3 + (tick % 4) as usize; // variable rate
            let arrivals = lcg_stream(tick + 13, n, 3);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), &brute(m.window(), &q)[..]);
        }
    }

    #[test]
    fn changed_queries_reported() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 1).unwrap();
        m.register_query(QueryId(3), q).unwrap();
        // First arrival becomes the top-1 → changed.
        m.tick(Timestamp(0), &[0.9, 0.9]).unwrap();
        assert_eq!(m.changed_queries(), &[QueryId(3)]);
        // A hopeless arrival changes nothing.
        m.tick(Timestamp(1), &[0.01, 0.01]).unwrap();
        assert!(m.changed_queries().is_empty());
    }

    #[test]
    fn rejects_bad_input() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        assert!(m.tick(Timestamp(0), &[0.5]).is_err());
        assert!(m.tick(Timestamp(0), &[0.5, 1.2]).is_err());
        assert!(m.result(QueryId(0)).is_err());
    }

    #[test]
    fn query_removal_clears_influence() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(5)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.tick(Timestamp(0), &lcg_stream(3, 5, 2)).unwrap();
        m.register_query(QueryId(1), q).unwrap();
        assert!(m.influence().total_entries() > 0);
        m.remove_query(QueryId(1)).unwrap();
        assert_eq!(m.influence().total_entries(), 0);
        // Subsequent ticks must not touch the removed query.
        m.tick(Timestamp(1), &lcg_stream(4, 5, 2)).unwrap();
    }

    /// Burst larger than the count window: same-cycle transients must not
    /// corrupt results (they are skipped in Pins, see maintenance docs).
    #[test]
    fn burst_overrunning_window_stays_exact() {
        let mut m = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        // 7 arrivals into a 4-window: the first 3 expire within the cycle.
        m.tick(Timestamp(0), &lcg_stream(99, 7, 2)).unwrap();
        assert_eq!(m.window().len(), 4);
        assert_eq!(m.result(QueryId(0)).unwrap(), &brute(m.window(), &q)[..]);
        m.tick(Timestamp(1), &lcg_stream(100, 9, 2)).unwrap();
        assert_eq!(m.result(QueryId(0)).unwrap(), &brute(m.window(), &q)[..]);
    }
}
