//! Dim-specialized scoring kernels over coordinate blocks.
//!
//! Every hot loop of the system — the top-k traversal's cell scan and
//! heap-push bounds, the maintenance replay of a cell run, the threshold
//! walk, update-stream scoring — reduces to the same two shapes: *score a
//! packed block of points* and *bound a function over a cell's corner
//! rectangle*. This module is those shapes, compiled well:
//!
//! * the [`ScoreFn`] enum is dispatched **once per call** (and, via
//!   [`dispatch`], once per whole traversal), never once per point or per
//!   heap push;
//! * the common dimensionalities (d = 2, 3, 4 — the paper's evaluation
//!   range, plus 1) are monomorphized via a const generic: weights,
//!   offsets and constraint bounds live in fixed-size stack arrays, the
//!   per-point reduction fully unrolls, and the compiler auto-vectorizes
//!   the scan over the packed coordinate block;
//! * other dimensionalities fall back to strided loops with the same
//!   per-call dispatch.
//!
//! The centrepiece is the [`Scorer`] trait plus the [`dispatch`] visitor:
//! a caller hands [`dispatch`] a generic closure-like visitor and receives
//! it back instantiated with a concrete scorer — the top-k computation
//! module runs its *entire* traversal (bounds on every heap push, scans of
//! every processed cell) through one monomorphized scorer with zero enum
//! matches inside the loop.
//!
//! The kernels are pure: they invoke `emit(id, score)` for every passing
//! point and leave all result book-keeping (top-lists, skybands, matching
//! sets) to the caller's closure.

// The fixed-dimensionality kernels index with `for d in 0..D` on purpose:
// with a const bound the compiler proves the accesses in range, fully
// unrolls the reduction, and vectorizes — the iterator forms clippy
// prefers obscure exactly that.
#![allow(clippy::needless_range_loop)]

use tkm_common::{Rect, ScoreFn, TupleId};

/// A scoring function pinned to a concrete family and dimensionality:
/// the monomorphized view of a [`ScoreFn`] that the hot loops run on.
pub trait Scorer {
    /// Dimensionality (a compile-time constant for the fixed kernels, so
    /// the default `scan` loop unrolls through inlining).
    fn dims(&self) -> usize;

    /// Evaluates the function on one packed point.
    fn score(&self, coords: &[f64]) -> f64;

    /// Upper bound over the closed rectangle `(lo, hi)`: the preferred
    /// corner's score, bitwise identical to [`ScoreFn::max_score_rect`].
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64;

    /// Invokes `emit(id, score)` for every point of the block inside
    /// `constraint` (all points when `None`).
    #[inline]
    fn scan(
        &self,
        ids: &[TupleId],
        coords: &[f64],
        constraint: Option<&Rect>,
        emit: impl FnMut(TupleId, f64),
    ) where
        Self: Sized,
    {
        scan_chunks(
            self.dims(),
            ids,
            coords,
            constraint,
            |c| self.score(c),
            emit,
        );
    }
}

/// A computation generic over the concrete scorer; [`dispatch`] resolves
/// the `(family, dims)` pair once and instantiates the visitor with it.
pub trait ScorerVisitor {
    /// The computation's result type.
    type Out;
    /// Runs the computation against a concrete scorer.
    fn visit<S: Scorer>(self, scorer: &S) -> Self::Out;
}

/// Resolves `f` to a concrete [`Scorer`] (monomorphized for d ≤ 4,
/// strided fallback above) and runs `v` against it. One enum match per
/// call — hot loops inside the visitor run dispatch-free.
#[inline]
pub fn dispatch<V: ScorerVisitor>(f: &ScoreFn, dims: usize, v: V) -> V::Out {
    match dims {
        1 => dispatch_fixed::<1, V>(f, v),
        2 => dispatch_fixed::<2, V>(f, v),
        3 => dispatch_fixed::<3, V>(f, v),
        4 => dispatch_fixed::<4, V>(f, v),
        _ => match f {
            ScoreFn::Linear(lf) => v.visit(&LinearDyn {
                weights: lf.weights(),
            }),
            ScoreFn::Product(pf) => v.visit(&ProductDyn {
                offsets: pf.offsets(),
            }),
            ScoreFn::Quadratic(qf) => v.visit(&QuadraticDyn {
                weights: qf.weights(),
            }),
            ScoreFn::Custom(_) => v.visit(&CustomScorer { f, dims }),
        },
    }
}

#[inline]
fn dispatch_fixed<const D: usize, V: ScorerVisitor>(f: &ScoreFn, v: V) -> V::Out {
    match f {
        ScoreFn::Linear(lf) => {
            let mut weights = [0.0f64; D];
            weights.copy_from_slice(lf.weights());
            v.visit(&LinearK::<D> { weights })
        }
        ScoreFn::Product(pf) => {
            let mut offsets = [0.0f64; D];
            offsets.copy_from_slice(pf.offsets());
            v.visit(&ProductK::<D> { offsets })
        }
        ScoreFn::Quadratic(qf) => {
            let mut weights = [0.0f64; D];
            weights.copy_from_slice(qf.weights());
            v.visit(&QuadraticK::<D> { weights })
        }
        ScoreFn::Custom(_) => v.visit(&CustomScorer { f, dims: D }),
    }
}

/// The shared block loop: streams the packed coordinates in fixed-size
/// chunks, applies the constraint test, and hands passing points to
/// `score` + `emit`. `D` is a compile-time chunk width where available.
#[inline(always)]
fn scan_chunks(
    dims: usize,
    ids: &[TupleId],
    coords: &[f64],
    constraint: Option<&Rect>,
    score: impl Fn(&[f64]) -> f64,
    mut emit: impl FnMut(TupleId, f64),
) {
    debug_assert_eq!(coords.len(), ids.len() * dims);
    let chunks = ids.iter().zip(coords.chunks_exact(dims));
    match constraint {
        None => {
            for (&id, c) in chunks {
                emit(id, score(c));
            }
        }
        Some(r) => {
            let lo = r.lo();
            let hi = r.hi();
            'points: for (&id, c) in chunks {
                for d in 0..dims {
                    if c[d] < lo[d] || c[d] > hi[d] {
                        continue 'points;
                    }
                }
                emit(id, score(c));
            }
        }
    }
}

/// Lane width of the fixed-dimensionality block scans: four points are
/// scored side by side in independent accumulators, which is what lets
/// the compiler keep the reduction in vector registers (4 × f64 = one
/// AVX2 register, two NEON registers) instead of chaining a serial
/// dependency through one accumulator.
const LANES: usize = 4;

/// Four-points-at-a-time scan shared by the fixed-dimensionality kernels.
///
/// `step` folds dimension `d` of one point into its lane accumulator with
/// exactly the floating-point operation (and `d`-major order) of the
/// kernel's `score`, so lane results are bitwise identical to the
/// per-point path — the traversal's threshold comparisons must not depend
/// on which path scored a tuple. Constrained scans keep the scalar path:
/// the filter makes lanes diverge, and constrained queries are rare.
#[inline(always)]
fn scan_lanes<const D: usize>(
    ids: &[TupleId],
    coords: &[f64],
    init: f64,
    step: impl Fn(&mut f64, usize, f64),
    score: impl Fn(&[f64]) -> f64,
    mut emit: impl FnMut(TupleId, f64),
) {
    debug_assert_eq!(coords.len(), ids.len() * D);
    let n = ids.len();
    let mut i = 0;
    while i + LANES <= n {
        let base = i * D;
        let mut acc = [init; LANES];
        for d in 0..D {
            for lane in 0..LANES {
                step(&mut acc[lane], d, coords[base + lane * D + d]);
            }
        }
        for lane in 0..LANES {
            emit(ids[i + lane], acc[lane]);
        }
        i += LANES;
    }
    for j in i..n {
        emit(ids[j], score(&coords[j * D..(j + 1) * D]));
    }
}

/// `Σ wᵢ·xᵢ`, compile-time dimensionality.
struct LinearK<const D: usize> {
    weights: [f64; D],
}

impl<const D: usize> Scorer for LinearK<D> {
    #[inline(always)]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            acc += self.weights[d] * coords[d];
        }
        acc
    }

    #[inline]
    fn scan(
        &self,
        ids: &[TupleId],
        coords: &[f64],
        constraint: Option<&Rect>,
        emit: impl FnMut(TupleId, f64),
    ) {
        if constraint.is_some() {
            scan_chunks(D, ids, coords, constraint, |c| self.score(c), emit);
            return;
        }
        scan_lanes::<D>(
            ids,
            coords,
            0.0,
            |acc, d, x| *acc += self.weights[d] * x,
            |c| self.score(c),
            emit,
        );
    }

    #[inline(always)]
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let w = self.weights[d];
            acc += w * if w < 0.0 { lo[d] } else { hi[d] };
        }
        acc
    }

    #[inline(always)]
    fn dims(&self) -> usize {
        D
    }
}

/// `Σ wᵢ·xᵢ`, runtime dimensionality.
struct LinearDyn<'a> {
    weights: &'a [f64],
}

impl Scorer for LinearDyn<'_> {
    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (w, x) in self.weights.iter().zip(coords) {
            acc += w * x;
        }
        acc
    }

    #[inline]
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((&w, &l), &h) in self.weights.iter().zip(lo).zip(hi) {
            acc += w * if w < 0.0 { l } else { h };
        }
        acc
    }

    #[inline]
    fn dims(&self) -> usize {
        self.weights.len()
    }
}

/// `Π (aᵢ + xᵢ)`, compile-time dimensionality (increasing on every axis).
struct ProductK<const D: usize> {
    offsets: [f64; D],
}

impl<const D: usize> Scorer for ProductK<D> {
    #[inline(always)]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 1.0;
        for d in 0..D {
            acc *= self.offsets[d] + coords[d];
        }
        acc
    }

    #[inline]
    fn scan(
        &self,
        ids: &[TupleId],
        coords: &[f64],
        constraint: Option<&Rect>,
        emit: impl FnMut(TupleId, f64),
    ) {
        if constraint.is_some() {
            scan_chunks(D, ids, coords, constraint, |c| self.score(c), emit);
            return;
        }
        scan_lanes::<D>(
            ids,
            coords,
            1.0,
            |acc, d, x| *acc *= self.offsets[d] + x,
            |c| self.score(c),
            emit,
        );
    }

    #[inline(always)]
    fn bound(&self, _lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 1.0;
        for d in 0..D {
            acc *= self.offsets[d] + hi[d];
        }
        acc
    }

    #[inline(always)]
    fn dims(&self) -> usize {
        D
    }
}

/// `Π (aᵢ + xᵢ)`, runtime dimensionality.
struct ProductDyn<'a> {
    offsets: &'a [f64],
}

impl Scorer for ProductDyn<'_> {
    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 1.0;
        for (a, x) in self.offsets.iter().zip(coords) {
            acc *= a + x;
        }
        acc
    }

    #[inline]
    fn bound(&self, _lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 1.0;
        for (&a, &h) in self.offsets.iter().zip(hi) {
            acc *= a + h;
        }
        acc
    }

    #[inline]
    fn dims(&self) -> usize {
        self.offsets.len()
    }
}

/// `Σ wᵢ·xᵢ²`, compile-time dimensionality.
struct QuadraticK<const D: usize> {
    weights: [f64; D],
}

impl<const D: usize> Scorer for QuadraticK<D> {
    #[inline(always)]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            acc += self.weights[d] * coords[d] * coords[d];
        }
        acc
    }

    #[inline]
    fn scan(
        &self,
        ids: &[TupleId],
        coords: &[f64],
        constraint: Option<&Rect>,
        emit: impl FnMut(TupleId, f64),
    ) {
        if constraint.is_some() {
            scan_chunks(D, ids, coords, constraint, |c| self.score(c), emit);
            return;
        }
        scan_lanes::<D>(
            ids,
            coords,
            0.0,
            |acc, d, x| *acc += self.weights[d] * x * x,
            |c| self.score(c),
            emit,
        );
    }

    #[inline(always)]
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for d in 0..D {
            let w = self.weights[d];
            let c = if w < 0.0 { lo[d] } else { hi[d] };
            acc += w * c * c;
        }
        acc
    }

    #[inline(always)]
    fn dims(&self) -> usize {
        D
    }
}

/// `Σ wᵢ·xᵢ²`, runtime dimensionality.
struct QuadraticDyn<'a> {
    weights: &'a [f64],
}

impl Scorer for QuadraticDyn<'_> {
    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (w, x) in self.weights.iter().zip(coords) {
            acc += w * x * x;
        }
        acc
    }

    #[inline]
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((&w, &l), &h) in self.weights.iter().zip(lo).zip(hi) {
            let c = if w < 0.0 { l } else { h };
            acc += w * c * c;
        }
        acc
    }

    #[inline]
    fn dims(&self) -> usize {
        self.weights.len()
    }
}

/// User-supplied monotone functions: the dynamic call stays, but the
/// per-point enum match and the per-push corner staging are gone.
struct CustomScorer<'a> {
    f: &'a ScoreFn,
    dims: usize,
}

impl Scorer for CustomScorer<'_> {
    #[inline]
    fn score(&self, coords: &[f64]) -> f64 {
        self.f.score(coords)
    }

    #[inline]
    fn bound(&self, lo: &[f64], hi: &[f64]) -> f64 {
        self.f.max_score_rect(lo, hi)
    }

    #[inline]
    fn dims(&self) -> usize {
        self.dims
    }
}

struct ScanVisitor<'a, E> {
    ids: &'a [TupleId],
    coords: &'a [f64],
    constraint: Option<&'a Rect>,
    emit: E,
}

impl<E: FnMut(TupleId, f64)> ScorerVisitor for ScanVisitor<'_, E> {
    type Out = ();
    #[inline]
    fn visit<S: Scorer>(self, scorer: &S) {
        scorer.scan(self.ids, self.coords, self.constraint, self.emit);
    }
}

/// Invokes `emit(id, score)` for every point of the block that lies inside
/// `constraint` (all points when `None`). `coords` holds `dims` packed
/// values per id, as produced by the grid's cell blocks and the ingest
/// stage's cell-grouped runs.
#[inline]
// lint: hot-path
pub fn scan_block(
    f: &ScoreFn,
    dims: usize,
    ids: &[TupleId],
    coords: &[f64],
    constraint: Option<&Rect>,
    emit: impl FnMut(TupleId, f64),
) {
    debug_assert_eq!(f.dims(), dims);
    debug_assert_eq!(coords.len(), ids.len() * dims);
    dispatch(
        f,
        dims,
        ScanVisitor {
            ids,
            coords,
            constraint,
            emit,
        },
    );
}

/// Scores one point. A thin alias for [`ScoreFn::score`]: for a single
/// point the enum already dispatches exactly once, so there is nothing
/// for the block machinery to amortise — the function exists to mark the
/// single-tuple scoring call sites (update-stream inserts, threshold
/// arrivals, the oracle's rescan) as part of this module's surface.
#[inline]
// lint: hot-path
pub fn score_point(f: &ScoreFn, coords: &[f64]) -> f64 {
    f.score(coords)
}

/// Upper bound of `f` over the closed cell bounds `(lo, hi)` — the score
/// of the preferred corner, specialised per family so the built-ins pick
/// each corner coordinate with one sign test and never materialise the
/// corner. Bitwise identical to [`ScoreFn::max_score_rect`]. (The top-k
/// traversal needs this on every heap push and therefore holds a
/// [`Scorer`] for the whole traversal instead of re-dispatching here.)
#[inline]
pub fn cell_bound(f: &ScoreFn, lo: &[f64], hi: &[f64]) -> f64 {
    struct BoundVisitor<'a> {
        lo: &'a [f64],
        hi: &'a [f64],
    }
    impl ScorerVisitor for BoundVisitor<'_> {
        type Out = f64;
        #[inline]
        fn visit<S: Scorer>(self, scorer: &S) -> f64 {
            scorer.bound(self.lo, self.hi)
        }
    }
    dispatch(f, lo.len(), BoundVisitor { lo, hi })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tkm_common::{Monotonicity, ScoringFunction};

    fn block(dims: usize, n: usize) -> (Vec<TupleId>, Vec<f64>) {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut coords = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            coords.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        ((0..n as u64).map(TupleId).collect(), coords)
    }

    fn collect(
        f: &ScoreFn,
        dims: usize,
        ids: &[TupleId],
        coords: &[f64],
        r: Option<&Rect>,
    ) -> Vec<(TupleId, f64)> {
        let mut out = Vec::new();
        scan_block(f, dims, ids, coords, r, |id, s| out.push((id, s)));
        out
    }

    /// Every family × every dimensionality (fixed and fallback) must agree
    /// exactly with the per-point reference evaluation.
    #[test]
    fn kernels_match_per_point_reference() {
        for dims in [1usize, 2, 3, 4, 5, 6] {
            let (ids, coords) = block(dims, 37);
            let fns = [
                ScoreFn::linear(vec![0.7; dims]).unwrap(),
                ScoreFn::linear((0..dims).map(|d| d as f64 - 1.5).collect::<Vec<_>>()).unwrap(),
                ScoreFn::product(vec![0.2; dims]).unwrap(),
                ScoreFn::quadratic(vec![1.3; dims]).unwrap(),
            ];
            for f in &fns {
                let got = collect(f, dims, &ids, &coords, None);
                assert_eq!(got.len(), ids.len());
                for (i, (id, s)) in got.iter().enumerate() {
                    assert_eq!(*id, ids[i]);
                    let reference = f.score(&coords[i * dims..(i + 1) * dims]);
                    assert_eq!(*s, reference, "family {f:?} dims {dims} point {i}");
                }
            }
        }
    }

    /// The 4-wide lane scans must agree bitwise with the per-point
    /// reference at every block size around the lane width: 0..=9 covers
    /// empty, sub-lane, exactly-one-lane, and lane-plus-remainder blocks.
    #[test]
    fn lane_boundaries_match_reference() {
        for dims in [1usize, 2, 3, 4] {
            for n in 0..=9 {
                let (ids, coords) = block(dims, n);
                let fns = [
                    ScoreFn::linear((0..dims).map(|d| 0.3 * d as f64 - 0.7).collect::<Vec<_>>())
                        .unwrap(),
                    ScoreFn::product(vec![0.15; dims]).unwrap(),
                    ScoreFn::quadratic((0..dims).map(|d| 1.1 - d as f64).collect::<Vec<_>>())
                        .unwrap(),
                ];
                for f in &fns {
                    let got = collect(f, dims, &ids, &coords, None);
                    assert_eq!(got.len(), n);
                    for (i, (id, s)) in got.iter().enumerate() {
                        assert_eq!(*id, ids[i]);
                        let reference = f.score(&coords[i * dims..(i + 1) * dims]);
                        assert_eq!(
                            s.to_bits(),
                            reference.to_bits(),
                            "family {f:?} dims {dims} n {n} point {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn constraint_filters_exactly() {
        for dims in [2usize, 5] {
            let (ids, coords) = block(dims, 64);
            let r = Rect::new(vec![0.25; dims], vec![0.75; dims]).unwrap();
            let f = ScoreFn::linear(vec![1.0; dims]).unwrap();
            let got = collect(&f, dims, &ids, &coords, Some(&r));
            let want: Vec<(TupleId, f64)> = ids
                .iter()
                .enumerate()
                .filter(|(i, _)| r.contains(&coords[i * dims..(i + 1) * dims]))
                .map(|(i, &id)| (id, f.score(&coords[i * dims..(i + 1) * dims])))
                .collect();
            assert_eq!(got, want);
            assert!(got.len() < ids.len(), "constraint filtered something");
            assert!(!got.is_empty(), "constraint kept something");
        }
    }

    /// `cell_bound` (and thus `Scorer::bound`) must agree bitwise with the
    /// generic preferred-corner evaluation it replaces — the traversal's
    /// termination test compares these bounds against scores produced by
    /// the same functions.
    #[test]
    fn cell_bound_matches_max_score_rect() {
        for dims in [1usize, 2, 3, 4, 6] {
            let lo: Vec<f64> = (0..dims).map(|d| 0.1 + d as f64 * 0.05).collect();
            let hi: Vec<f64> = lo.iter().map(|l| l + 0.2).collect();
            let fns = [
                ScoreFn::linear((0..dims).map(|d| d as f64 - 1.2).collect::<Vec<_>>()).unwrap(),
                ScoreFn::linear(vec![0.0; dims]).unwrap(),
                ScoreFn::product(vec![0.3; dims]).unwrap(),
                ScoreFn::quadratic((0..dims).map(|d| 0.8 - d as f64).collect::<Vec<_>>()).unwrap(),
            ];
            for f in &fns {
                assert_eq!(
                    cell_bound(f, &lo, &hi),
                    f.max_score_rect(&lo, &hi),
                    "family {f:?} dims {dims}"
                );
            }
        }
    }

    #[test]
    fn custom_functions_run_through_the_block_path() {
        #[derive(Debug)]
        struct MinFn(usize);
        impl ScoringFunction for MinFn {
            fn dims(&self) -> usize {
                self.0
            }
            fn score(&self, coords: &[f64]) -> f64 {
                coords.iter().copied().fold(f64::INFINITY, f64::min)
            }
            fn monotonicity(&self, _dim: usize) -> Monotonicity {
                Monotonicity::Increasing
            }
        }
        for dims in [3usize, 6] {
            let (ids, coords) = block(dims, 9);
            let f = ScoreFn::custom(Arc::new(MinFn(dims))).unwrap();
            let got = collect(&f, dims, &ids, &coords, None);
            for (i, (_, s)) in got.iter().enumerate() {
                assert_eq!(*s, f.score(&coords[i * dims..(i + 1) * dims]));
            }
            let lo = vec![0.2; dims];
            let hi = vec![0.9; dims];
            assert_eq!(cell_bound(&f, &lo, &hi), f.max_score_rect(&lo, &hi));
        }
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let mut calls = 0;
        scan_block(&f, 2, &[], &[], None, |_, _| calls += 1);
        assert_eq!(calls, 0);
    }
}
