//! Piecewise-monotone (non-monotone) preference functions — the paper's
//! stated future work (§9):
//!
//! > "An interesting direction for future work concerns processing queries
//! > with non-monotone preference functions. […] a function with finite and
//! > analytically computable local maxima could be evaluated with a proper
//! > partitioning of the space into sub-domains where it is monotone."
//!
//! This module implements exactly that partitioning strategy: a
//! [`PiecewiseQuery`] supplies a finite set of *(region, monotone piece)*
//! pairs that tile the monitored space; each piece runs as an ordinary
//! constrained top-k sub-query (§7) on an inner engine, and the reported
//! result is the best-k merge across pieces (deduplicated — pieces of a
//! true partition agree on shared boundaries).
//!
//! The canonical example is nearest-neighbour monitoring: the preference
//! `f(x) = −Σ (xᵢ − cᵢ)²` peaks at an interior point `c`, but is monotone
//! per-dimension inside each of the `2^d` orthants around `c`.
//! [`PiecewiseQuery::nearest_neighbor`] builds that partition
//! automatically, turning either TMA or SMA into an exact continuous k-NN
//! monitor over the sliding window.
//!
//! Correctness relies on the computation module using **clipped** cell
//! bounds (`Grid::maxscore_in`) for constrained traversals: a piece's
//! declared monotonicity holds only inside its region, so upper bounds
//! must be evaluated on `cell ∩ region`.

use std::sync::Arc;

use crate::engine::ContinuousTopK;
use crate::query::Query;
use tkm_common::{
    FxHashMap, Monotonicity, QueryId, Rect, Result, ScoreFn, Scored, ScoringFunction, Timestamp,
    TkmError, MAX_DIMS,
};

/// A non-monotone preference function given as a partition of the
/// workspace into regions with per-region monotone pieces.
#[derive(Clone, Debug)]
// lint: allow(space, reason=submitted query description, not retained engine state; registration keeps only k and the sub-query ids)
pub struct PiecewiseQuery {
    pieces: Vec<(Rect, ScoreFn)>,
    k: usize,
}

impl PiecewiseQuery {
    /// Builds a piecewise query from explicit *(region, piece)* pairs.
    ///
    /// Requirements (the caller's responsibility, as the paper assumes the
    /// partition is supplied analytically): the regions jointly cover the
    /// monitored sub-space, every piece is monotone *inside its region*,
    /// and overlapping boundaries agree on the score.
    pub fn new(pieces: Vec<(Rect, ScoreFn)>, k: usize) -> Result<PiecewiseQuery> {
        if pieces.is_empty() {
            return Err(TkmError::InvalidParameter(
                "PiecewiseQuery: at least one piece required".into(),
            ));
        }
        if k == 0 {
            return Err(TkmError::InvalidParameter(
                "PiecewiseQuery: k must be positive".into(),
            ));
        }
        let dims = pieces[0].1.dims();
        for (rect, f) in &pieces {
            if f.dims() != dims || rect.dims() != dims {
                return Err(TkmError::DimensionMismatch {
                    expected: dims,
                    got: f.dims().min(rect.dims()),
                });
            }
        }
        Ok(PiecewiseQuery { pieces, k })
    }

    /// Continuous k-nearest-neighbour query: rank tuples by
    /// `f(x) = −Σ (xᵢ − cᵢ)²` (closest to `center` first), partitioned
    /// into the `2^d` orthants around `center` where `f` is monotone.
    ///
    /// ```
    /// use tkm_common::{QueryId, Timestamp};
    /// use tkm_core::piecewise::{PiecewiseMonitor, PiecewiseQuery};
    /// use tkm_core::{GridSpec, SmaMonitor};
    /// use tkm_window::WindowSpec;
    ///
    /// let engine = SmaMonitor::new(2, WindowSpec::Count(100), GridSpec::default()).unwrap();
    /// let mut knn = PiecewiseMonitor::new(engine);
    /// knn.register_query(
    ///     QueryId(0),
    ///     &PiecewiseQuery::nearest_neighbor(&[0.5, 0.5], 2).unwrap(),
    /// )
    /// .unwrap();
    /// knn.tick(Timestamp(0), &[0.1, 0.1, 0.45, 0.55, 0.9, 0.2]).unwrap();
    /// let nearest = knn.result(QueryId(0)).unwrap();
    /// assert_eq!(nearest[0].id.0, 1, "(0.45, 0.55) is closest to the centre");
    /// ```
    pub fn nearest_neighbor(center: &[f64], k: usize) -> Result<PiecewiseQuery> {
        let dims = center.len();
        if dims == 0 || dims > MAX_DIMS {
            return Err(TkmError::InvalidParameter(format!(
                "nearest_neighbor: dimensionality {dims} outside [1, {MAX_DIMS}]"
            )));
        }
        if let Some(bad) = center.iter().find(|c| !(0.0..=1.0).contains(*c)) {
            return Err(TkmError::InvalidParameter(format!(
                "nearest_neighbor: center coordinate {bad} outside the unit workspace"
            )));
        }
        let mut pieces = Vec::with_capacity(1 << dims);
        for orthant in 0u32..(1 << dims) {
            let mut lo = vec![0.0; dims];
            let mut hi = vec![1.0; dims];
            let mut mono = Vec::with_capacity(dims);
            for dim in 0..dims {
                if orthant & (1 << dim) != 0 {
                    // Above the centre: score falls as xᵢ grows.
                    lo[dim] = center[dim];
                    mono.push(Monotonicity::Decreasing);
                } else {
                    hi[dim] = center[dim];
                    mono.push(Monotonicity::Increasing);
                }
            }
            let f = ScoreFn::custom(Arc::new(NegSquaredDistance {
                center: center.to_vec().into_boxed_slice(),
                mono: mono.into_boxed_slice(),
            }))?;
            pieces.push((Rect::new(lo, hi)?, f));
        }
        PiecewiseQuery::new(pieces, k)
    }

    /// Result size `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The pieces.
    #[inline]
    pub fn pieces(&self) -> &[(Rect, ScoreFn)] {
        &self.pieces
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.pieces[0].1.dims()
    }
}

/// `f(x) = −Σ (xᵢ − cᵢ)²` with a per-orthant monotonicity declaration.
#[derive(Debug)]
// lint: allow(space, reason=O(dims) boxed anchor owned by a ScoreFn; counted through ScoreFn::space_bytes)
struct NegSquaredDistance {
    center: Box<[f64]>,
    mono: Box<[Monotonicity]>,
}

impl ScoringFunction for NegSquaredDistance {
    fn dims(&self) -> usize {
        self.center.len()
    }

    fn score(&self, coords: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (x, c) in coords.iter().zip(&self.center) {
            let d = x - c;
            acc -= d * d;
        }
        acc
    }

    fn monotonicity(&self, dim: usize) -> Monotonicity {
        self.mono[dim]
    }
}

struct Registered {
    k: usize,
    sub_ids: Vec<QueryId>,
}

/// Adapter that runs piecewise-monotone queries on any monotone top-k
/// engine by fanning each query out into constrained sub-queries.
pub struct PiecewiseMonitor<E: ContinuousTopK> {
    engine: E,
    queries: FxHashMap<QueryId, Registered>,
    next_internal: u64,
}

impl<E: ContinuousTopK> PiecewiseMonitor<E> {
    /// Wraps an engine. The wrapper owns the engine and its query-id space;
    /// register queries only through the wrapper.
    pub fn new(engine: E) -> PiecewiseMonitor<E> {
        PiecewiseMonitor {
            engine,
            queries: FxHashMap::default(),
            next_internal: 0,
        }
    }

    /// The wrapped engine (read access).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Registers a piecewise query under a caller-chosen external id.
    pub fn register_query(&mut self, id: QueryId, q: &PiecewiseQuery) -> Result<()> {
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        if q.dims() != self.engine.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.engine.dims(),
                got: q.dims(),
            });
        }
        let mut sub_ids = Vec::with_capacity(q.pieces.len());
        for (rect, f) in &q.pieces {
            let sub = QueryId(self.next_internal);
            self.next_internal += 1;
            let sub_query = Query::constrained(f.clone(), q.k, rect.clone())?;
            if let Err(e) = self.engine.register_query(sub, sub_query) {
                // Roll back the pieces registered so far.
                for done in &sub_ids {
                    let _ = self.engine.remove_query(*done);
                }
                return Err(e);
            }
            sub_ids.push(sub);
        }
        self.queries.insert(id, Registered { k: q.k, sub_ids });
        Ok(())
    }

    /// Terminates a piecewise query (all its sub-queries).
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let reg = self.queries.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        for sub in reg.sub_ids {
            self.engine.remove_query(sub)?;
        }
        Ok(())
    }

    /// Executes one processing cycle on the wrapped engine.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        self.engine.tick(now, arrivals)
    }

    /// The current top-k of a piecewise query: the best-k merge of its
    /// pieces, deduplicated by tuple id (shared region boundaries report
    /// the same tuple from several pieces with the same score).
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        let reg = self.queries.get(&id).ok_or(TkmError::UnknownQuery(id))?;
        let mut merged: Vec<Scored> = Vec::with_capacity(reg.sub_ids.len() * reg.k);
        for sub in &reg.sub_ids {
            merged.extend(self.engine.result(*sub)?);
        }
        merged.sort_by(|a, b| b.cmp(a));
        merged.dedup_by_key(|s| s.id);
        merged.truncate(reg.k);
        Ok(merged)
    }

    /// Deep size estimate of the wrapped engine in bytes.
    pub fn space_bytes(&self) -> usize {
        self.engine.space_bytes()
            + self
                .queries
                .values()
                .map(|r| std::mem::size_of::<Registered>() + r.sub_ids.capacity() * 8)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sma::SmaMonitor;
    use crate::tma::{GridSpec, TmaMonitor};
    use tkm_common::TupleId;
    use tkm_window::WindowSpec;

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute_knn(window: &tkm_window::Window, center: &[f64], k: usize) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .map(|(id, c)| {
                let d2: f64 = c.iter().zip(center).map(|(x, c)| (x - c) * (x - c)).sum();
                Scored::new(-d2, id)
            })
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    #[test]
    fn validation() {
        assert!(PiecewiseQuery::new(vec![], 3).is_err());
        assert!(PiecewiseQuery::nearest_neighbor(&[0.5, 0.5], 0).is_err());
        assert!(PiecewiseQuery::nearest_neighbor(&[1.5, 0.5], 3).is_err());
        assert!(PiecewiseQuery::nearest_neighbor(&[], 3).is_err());
        let q = PiecewiseQuery::nearest_neighbor(&[0.3, 0.7], 3).unwrap();
        assert_eq!(q.pieces().len(), 4, "2^d orthants");
        assert_eq!(q.dims(), 2);
    }

    #[test]
    fn knn_on_sma_matches_brute_force() {
        let engine =
            SmaMonitor::new(2, WindowSpec::Count(60), GridSpec::PerDim(7)).expect("config");
        let mut m = PiecewiseMonitor::new(engine);
        let q = PiecewiseQuery::nearest_neighbor(&[0.4, 0.6], 5).unwrap();
        m.register_query(QueryId(0), &q).unwrap();
        for tick in 0..50u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick + 1, 9, 2))
                .unwrap();
            assert_eq!(
                m.result(QueryId(0)).unwrap(),
                brute_knn(m.engine().window(), &[0.4, 0.6], 5),
                "tick {tick}"
            );
        }
    }

    #[test]
    fn knn_on_tma_matches_brute_force() {
        let engine =
            TmaMonitor::new(3, WindowSpec::Count(80), GridSpec::PerDim(4)).expect("config");
        let mut m = PiecewiseMonitor::new(engine);
        let center = [0.5, 0.25, 0.75];
        let q = PiecewiseQuery::nearest_neighbor(&center, 4).unwrap();
        m.register_query(QueryId(0), &q).unwrap();
        for tick in 0..40u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick + 5, 12, 3))
                .unwrap();
            assert_eq!(
                m.result(QueryId(0)).unwrap(),
                brute_knn(m.engine().window(), &center, 4),
                "tick {tick}"
            );
        }
    }

    #[test]
    fn center_on_boundary_still_exact() {
        // Degenerate orthants (center on the workspace edge).
        let engine =
            SmaMonitor::new(2, WindowSpec::Count(30), GridSpec::PerDim(5)).expect("config");
        let mut m = PiecewiseMonitor::new(engine);
        let q = PiecewiseQuery::nearest_neighbor(&[0.0, 1.0], 3).unwrap();
        m.register_query(QueryId(0), &q).unwrap();
        for tick in 0..25u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick + 9, 6, 2))
                .unwrap();
            assert_eq!(
                m.result(QueryId(0)).unwrap(),
                brute_knn(m.engine().window(), &[0.0, 1.0], 3)
            );
        }
    }

    #[test]
    fn tuple_on_piece_boundary_not_duplicated() {
        let engine =
            SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).expect("config");
        let mut m = PiecewiseMonitor::new(engine);
        let q = PiecewiseQuery::nearest_neighbor(&[0.5, 0.5], 4).unwrap();
        m.register_query(QueryId(0), &q).unwrap();
        // A tuple exactly at the centre lies in all four orthants.
        m.tick(Timestamp(0), &[0.5, 0.5, 0.2, 0.2, 0.9, 0.1])
            .unwrap();
        let res = m.result(QueryId(0)).unwrap();
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].id, TupleId(0), "the centre tuple is nearest");
        assert_eq!(res[0].score.get(), 0.0);
        let ids: std::collections::HashSet<_> = res.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 3, "no duplicates in the merge");
    }

    #[test]
    fn lifecycle_and_errors() {
        let engine =
            SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).expect("config");
        let mut m = PiecewiseMonitor::new(engine);
        let q = PiecewiseQuery::nearest_neighbor(&[0.5, 0.5], 2).unwrap();
        m.register_query(QueryId(1), &q).unwrap();
        assert!(matches!(
            m.register_query(QueryId(1), &q),
            Err(TkmError::DuplicateQuery(_))
        ));
        // Dimensionality mismatch rolls back cleanly.
        let q3 = PiecewiseQuery::nearest_neighbor(&[0.5, 0.5, 0.5], 2).unwrap();
        assert!(m.register_query(QueryId(2), &q3).is_err());
        m.remove_query(QueryId(1)).unwrap();
        assert!(m.remove_query(QueryId(1)).is_err());
        assert!(m.result(QueryId(1)).is_err());
    }
}
