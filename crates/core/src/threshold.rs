//! Threshold monitoring (paper §7): report every valid tuple whose score
//! exceeds a user-specified threshold.
//!
//! The framework applies with two simplifications relative to top-k: the
//! influence region is *static* (all cells with `maxscore > τ`), so the
//! book-keeping is built once with a plain list walk (no heap — visiting
//! order is irrelevant) and never recomputed; and maintenance merely
//! reports arrivals/expiries of qualifying tuples.

use crate::ingest::validate_arrivals;
use crate::kernel;
use crate::registry::QueryRegistry;
use crate::tma::GridSpec;
use tkm_common::{FxHashSet, QueryId, Result, ScoreFn, Scored, Timestamp, TkmError, TupleId};
use tkm_grid::{CellMode, Grid, InfluenceTable, VisitStamps};
use tkm_window::{Window, WindowSpec};

#[derive(Debug)]
struct ThresholdQuery {
    f: ScoreFn,
    threshold: f64,
    /// Currently matching tuples.
    matching: FxHashSet<TupleId>,
    /// Tuples that started matching in the last tick.
    added: Vec<Scored>,
    /// Tuples that stopped matching (expired) in the last tick.
    removed: Vec<TupleId>,
}

/// Continuous threshold-query monitor.
#[derive(Debug)]
pub struct ThresholdMonitor {
    window: Window,
    grid: Grid,
    influence: InfluenceTable,
    stamps: VisitStamps,
    queries: QueryRegistry<ThresholdQuery>,
}

impl ThresholdMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<ThresholdMonitor> {
        let grid = grid.build(dims, CellMode::Fifo)?;
        let stamps = VisitStamps::new(grid.num_cells());
        let influence = InfluenceTable::new(grid.num_cells());
        Ok(ThresholdMonitor {
            window: Window::new(dims, window)?,
            grid,
            influence,
            stamps,
            queries: QueryRegistry::new(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// Registers a threshold query: monitor all tuples with
    /// `score > threshold`. The initial matching set is computed by walking
    /// the cells with `maxscore > threshold` from the preferred corner.
    pub fn register_query(&mut self, id: QueryId, f: ScoreFn, threshold: f64) -> Result<()> {
        if f.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: f.dims(),
            });
        }
        if !threshold.is_finite() {
            return Err(TkmError::InvalidParameter(
                "register_query: threshold must be finite".into(),
            ));
        }
        let slot = self.queries.insert(
            id,
            ThresholdQuery {
                f,
                threshold,
                matching: FxHashSet::default(),
                added: Vec::new(),
                removed: Vec::new(),
            },
        )?;
        let Self {
            grid,
            influence,
            stamps,
            queries,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        // List walk from the best corner over cells with maxscore > τ
        // (paper: "the search can be performed with a list instead of a
        // heap, since the visiting order is not important").
        stamps.begin();
        let start = grid.best_corner(&st.f);
        stamps.mark(start);
        let mut list = vec![start];
        let ThresholdQuery {
            f,
            threshold,
            matching,
            added,
            ..
        } = st;
        while let Some(cell) = list.pop() {
            if grid.maxscore(cell, f) <= *threshold {
                continue;
            }
            // Stream the cell's coordinate-inline block through the
            // scoring kernel; no window resolution per tuple.
            let points = grid.cell(cell).points();
            kernel::scan_block(
                f,
                grid.dims(),
                points.ids(),
                points.coords(),
                None,
                |tid, score| {
                    if score > *threshold {
                        matching.insert(tid);
                        added.push(Scored::new(score, tid));
                    }
                },
            );
            influence.insert(cell, slot);
            for dim in 0..grid.dims() {
                if let Some(n) = grid.step_worse(cell, dim, f) {
                    if stamps.mark(n) {
                        list.push(n);
                    }
                }
            }
        }
        added.sort_by(|a, b| b.cmp(a));
        Ok(())
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        // The influence region is static: sweep it with the same walk used
        // to build it.
        self.stamps.begin();
        let start = self.grid.best_corner(&st.f);
        self.stamps.mark(start);
        let mut list = vec![start];
        while let Some(cell) = list.pop() {
            if !self.influence.remove(cell, slot) {
                continue;
            }
            for dim in 0..self.grid.dims() {
                if let Some(n) = self.grid.step_worse(cell, dim, &st.f) {
                    if self.stamps.mark(n) {
                        list.push(n);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes one processing cycle; afterwards, per-query deltas are
    /// available via [`ThresholdMonitor::added`] / [`ThresholdMonitor::removed`].
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        for q in self.queries.states_mut() {
            q.added.clear();
            q.removed.clear();
        }

        {
            let Self {
                window,
                grid,
                influence,
                queries,
                ..
            } = self;
            for coords in arrivals.chunks_exact(dims) {
                let id = window.insert(coords, now)?;
                let cell = grid.insert_point(coords, id);
                for &slot in influence.as_slice(cell) {
                    let (_, st) = queries.slot_mut(slot);
                    let score = kernel::score_point(&st.f, coords);
                    if score > st.threshold {
                        st.matching.insert(id);
                        st.added.push(Scored::new(score, id));
                    }
                }
            }

            window.drain_expired(now, |id, coords| {
                let cell = grid
                    .remove_point(coords, id)
                    // lint: allow(panic, reason=window/grid lockstep is the ingest invariant; desync is unrecoverable)
                    .expect("window and grid are updated in lockstep");
                for &slot in influence.as_slice(cell) {
                    let (_, st) = queries.slot_mut(slot);
                    if st.matching.remove(&id) {
                        st.removed.push(id);
                    }
                }
            });
        }
        Ok(())
    }

    /// Tuples that started matching `id`'s predicate in the last tick.
    pub fn added(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(id)
            .map(|q| q.added.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Tuples that stopped matching (expired) in the last tick.
    pub fn removed(&self, id: QueryId) -> Result<&[TupleId]> {
        self.queries
            .get(id)
            .map(|q| q.removed.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// The full current matching set (unordered).
    pub fn matching(&self, id: QueryId) -> Result<&FxHashSet<TupleId>> {
        self.queries
            .get(id)
            .map(|q| &q.matching)
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.grid.space_bytes()
            + self.influence.space_bytes()
            + self.stamps.space_bytes()
            + self.queries.space_bytes()
            + self
                .queries
                .iter()
                .map(|(_, q)| {
                    std::mem::size_of::<ThresholdQuery>()
                        + q.matching.capacity() * (std::mem::size_of::<TupleId>() + 8)
                        + q.added.capacity() * std::mem::size_of::<Scored>()
                        + q.removed.capacity() * std::mem::size_of::<TupleId>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute_matching(window: &Window, f: &ScoreFn, tau: f64) -> Vec<TupleId> {
        let mut out: Vec<TupleId> = window
            .iter()
            .filter(|(_, c)| f.score(c) > tau)
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn matches_brute_force_over_stream() {
        let mut m = ThresholdMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        // Pre-populate, then register (exercises the initial walk).
        m.tick(Timestamp(0), &lcg_stream(1, 20, 2)).unwrap();
        m.register_query(QueryId(0), f.clone(), 1.4).unwrap();
        assert_eq!(
            m.added(QueryId(0)).unwrap().len(),
            m.matching(QueryId(0)).unwrap().len(),
            "initial matches are reported as added"
        );
        for tick in 1..30u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick, 8, 2)).unwrap();
            let mut got: Vec<TupleId> = m.matching(QueryId(0)).unwrap().iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, brute_matching(m.window(), &f, 1.4));
        }
    }

    #[test]
    fn deltas_are_exact() {
        let mut m = ThresholdMonitor::new(1, WindowSpec::Count(2), GridSpec::PerDim(4)).unwrap();
        let f = ScoreFn::linear(vec![1.0]).unwrap();
        m.register_query(QueryId(1), f, 0.5).unwrap();
        m.tick(Timestamp(0), &[0.9, 0.2]).unwrap();
        assert_eq!(m.added(QueryId(1)).unwrap().len(), 1);
        assert!(m.removed(QueryId(1)).unwrap().is_empty());
        // 0.9 (id 0) expires when two more arrive.
        m.tick(Timestamp(1), &[0.7, 0.1]).unwrap();
        assert_eq!(m.added(QueryId(1)).unwrap().len(), 1, "0.7 matched");
        assert_eq!(m.removed(QueryId(1)).unwrap(), &[TupleId(0)]);
    }

    #[test]
    fn removal_clears_influence() {
        let mut m = ThresholdMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(5)).unwrap();
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        m.register_query(QueryId(2), f, 0.3).unwrap();
        m.remove_query(QueryId(2)).unwrap();
        assert!(m.remove_query(QueryId(2)).is_err());
        assert_eq!(m.influence.total_entries(), 0);
        m.tick(Timestamp(0), &lcg_stream(5, 4, 2)).unwrap();
    }

    #[test]
    fn validation() {
        let mut m = ThresholdMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let f1 = ScoreFn::linear(vec![1.0]).unwrap();
        assert!(m.register_query(QueryId(0), f1, 0.5).is_err());
        let f2 = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        assert!(m.register_query(QueryId(0), f2, f64::NAN).is_err());
    }
}
