//! The top-k computation module (paper Figure 6).
//!
//! Visits grid cells in descending `maxscore` order without scoring every
//! cell up front: starting from the best-corner cell, each processed cell
//! en-heaps its `d` "one step worse" neighbours, whose maxscores bound all
//! remaining cells (Figure 5b). The search stops when the best unprocessed
//! cell cannot contain a tuple that beats the current k-th score, which
//! makes the set of processed cells exactly the cells intersecting the
//! query's influence region — the minimal set that must be book-kept.
//!
//! Differences from the paper's pseudo-code, both deliberate:
//!
//! * the loop continues while the heap key is `≥` the current k-th score
//!   (the paper uses `>`); with the workspace tie-break (older tuple wins
//!   equal scores) a boundary cell whose maxscore ties the threshold can
//!   still contain result tuples, and the non-strict test keeps the engines
//!   exact under ties at negligible extra cost;
//! * with tie tracking enabled (SMA), candidates displaced at the k-th
//!   boundary with equal score are collected so the skyband can be seeded
//!   with the *full* k-skyband of tuples scoring at least the threshold.
//!
//! Constrained queries (§7) pass a constraint rectangle: the traversal is
//! clipped to the cells overlapping it and points outside are filtered.
//!
//! The scan of each processed cell streams `(id, coords)` pairs straight
//! out of the cell's coordinate-inline point block through the
//! dim-specialized [`crate::kernel`] scan — the traversal performs **zero**
//! per-tuple lookups into the window ring or slab (the old
//! `TupleLookup::coords` indirection is gone from the signature entirely).
//!
//! The traversal state (visit stamps, the cell heap, the frontier list)
//! lives in a caller-owned [`ComputeScratch`]: engines recompute queries
//! every tick, and reusing the buffers makes steady-state recomputations
//! allocation-free apart from the result list itself.

use std::collections::BinaryHeap;

use crate::kernel;
use crate::result::TopList;
use tkm_common::{Monotonicity, OrderedF64, QuerySlot, Rect, ScoreFn, Scored, MAX_DIMS};
use tkm_grid::{CellId, Grid, InfluenceTable, VisitStamps};

/// Counters of one computation-module invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Cells de-heaped and processed.
    pub cells_processed: u64,
    /// Points examined in processed cells.
    pub points_scanned: u64,
    /// Cells pushed onto the heap.
    pub heap_pushes: u64,
}

/// Result of one computation-module invocation.
///
/// The frontier (cells en-heaped but not processed at termination — the
/// seeds of the influence clean-up walk, Figure 9 line 14) is *not* part
/// of this value: it is left in [`ComputeScratch::frontier`] so the
/// follow-up [`crate::influence::cleanup_from_frontier`] walk can consume
/// it in place without an allocation.
#[derive(Debug)]
// lint: allow(space, reason=transient per-computation value; its buffers are recycled into the counted ComputeScratch)
pub struct ComputeOutcome {
    /// The top-k list (≤ k entries, best first).
    pub top: TopList,
    /// Candidates outside the top-k whose score ties the k-th score
    /// (present only when tie tracking was requested).
    pub boundary_ties: Vec<Scored>,
    /// The minimum traversal key (maxscore, clipped under a constraint)
    /// over the processed cells: after the follow-up clean-up walk, the
    /// query's influence lists cover every cell with key strictly above
    /// this. Feed it back as [`InfluenceUpdate::listed_above`] on the next
    /// recomputation to skip the (idempotent, but at high query counts
    /// expensive) re-insert into every already-listed cell.
    pub region_bound: f64,
    /// Access counters.
    pub stats: ComputeStats,
}

/// Influence-list maintenance instructions for a monitored computation.
#[derive(Debug)]
pub struct InfluenceUpdate<'a> {
    /// The maintenance domain's influence lists.
    pub table: &'a mut InfluenceTable,
    /// The dense slot of the query being (re)computed.
    pub slot: QuerySlot,
    /// Cells whose traversal key is strictly above this are known to carry
    /// the slot already (the [`ComputeOutcome::region_bound`] of the
    /// previous computation for this slot, `+∞` for a first computation):
    /// the traversal skips their insert instead of binary-searching the
    /// corner cells' long lists on every recomputation. Boundary cells
    /// whose key ties the bound still insert — a stop mid-way through an
    /// equal-key group can leave part of that group unlisted, so only the
    /// strict region is provably covered.
    pub listed_above: f64,
}

impl<'a> InfluenceUpdate<'a> {
    /// Update instructions for a first computation (or any caller without
    /// a remembered bound): nothing is assumed listed, every processed
    /// cell inserts.
    pub fn fresh(table: &'a mut InfluenceTable, slot: QuerySlot) -> InfluenceUpdate<'a> {
        InfluenceUpdate {
            table,
            slot,
            listed_above: f64::INFINITY,
        }
    }
}

/// Runs the top-k computation. With `influence = Some(update)` — the
/// monitoring path — the query's dense slot is registered in the influence
/// list of every processed cell not already known to carry it (see
/// [`InfluenceUpdate::listed_above`]); with `influence = None` the
/// traversal is a side-effect-free *snapshot* query. The grid itself is
/// only read, so one shared grid can serve concurrent computations as long
/// as each caller brings its own table and scratch. `scratch` must be
/// sized for the same grid; after return its stamp epoch still marks every
/// en-heaped cell and [`ComputeScratch::frontier`] holds the unprocessed
/// frontier — the clean-up walk relies on both.
///
/// All point data is read from the grid's coordinate-inline cell blocks;
/// the window/slab is not consulted (and not a parameter).
///
/// `reuse` recycles a previous result's [`TopList`] buffers into the new
/// result (engines pass the query's old top-list so recomputations do not
/// allocate); pass `None` to build a fresh list.
#[allow(clippy::too_many_arguments)]
// lint: hot-path
pub fn compute_topk(
    grid: &Grid,
    scratch: &mut ComputeScratch,
    influence: Option<InfluenceUpdate<'_>>,
    f: &ScoreFn,
    k: usize,
    constraint: Option<&Rect>,
    track_ties: bool,
    reuse: Option<TopList>,
) -> ComputeOutcome {
    debug_assert_eq!(grid.dims(), f.dims());
    debug_assert_eq!(scratch.stamps.len(), grid.num_cells());
    let top = match reuse {
        Some(mut t) => {
            t.reset(k, track_ties);
            t
        }
        None if track_ties => TopList::with_tie_tracking(k),
        None => TopList::new(k),
    };
    // Resolve the scoring function to a concrete monomorphized kernel once;
    // the whole traversal (bounds on every heap push, scans of every
    // processed cell) then runs without a single enum dispatch.
    kernel::dispatch(
        f,
        grid.dims(),
        Traversal {
            grid,
            scratch,
            influence,
            f,
            constraint,
            top,
        },
    )
}

/// The traversal of [`compute_topk`], generic over the concrete scorer.
struct Traversal<'a> {
    grid: &'a Grid,
    scratch: &'a mut ComputeScratch,
    influence: Option<InfluenceUpdate<'a>>,
    f: &'a ScoreFn,
    constraint: Option<&'a Rect>,
    top: TopList,
}

impl kernel::ScorerVisitor for Traversal<'_> {
    type Out = ComputeOutcome;

    fn visit<S: kernel::Scorer>(self, scorer: &S) -> ComputeOutcome {
        let Traversal {
            grid,
            scratch,
            mut influence,
            f,
            constraint,
            mut top,
        } = self;
        let dims = grid.dims();
        let mut stats = ComputeStats::default();

        let range = constraint.map(|r| grid.cell_range(r));
        let start = match &range {
            Some(r) => grid.best_corner_in(r, f),
            None => grid.best_corner(f),
        };
        // Resolve each axis' monotonicity once; the per-cell neighbour
        // steps below run on the cached directions.
        let mut dirs = [Monotonicity::Increasing; MAX_DIMS];
        for (dim, dir) in dirs.iter_mut().enumerate().take(dims) {
            *dir = f.monotonicity(dim);
        }

        // With a constraint the heap keys are clipped maxscores (cell ∩
        // R): tighter for boundary cells, and mandatory when `f` is only
        // monotone inside R (piecewise-monotone pieces). This runs on
        // every heap push.
        let cell_bound = |cell: CellId| {
            let (cell_lo, cell_hi) = grid.cell_lo_hi(cell);
            match constraint {
                Some(r) => {
                    let mut lo = [0.0f64; MAX_DIMS];
                    let mut hi = [0.0f64; MAX_DIMS];
                    for dim in 0..dims {
                        lo[dim] = cell_lo[dim].max(r.lo()[dim]);
                        hi[dim] = cell_hi[dim].min(r.hi()[dim]);
                        if lo[dim] > hi[dim] {
                            // Disjoint (possible for range-boundary
                            // cells): nothing inside can qualify.
                            return f64::NEG_INFINITY;
                        }
                    }
                    scorer.bound(&lo[..dims], &hi[..dims])
                }
                None => scorer.bound(cell_lo, cell_hi),
            }
        };

        let ComputeScratch {
            stamps,
            heap,
            frontier,
            ..
        } = scratch;
        heap.clear();
        stamps.begin();
        stamps.mark(start);
        heap.push((OrderedF64::new(cell_bound(start)), start));
        stats.heap_pushes += 1;
        // Tracks `top.threshold()` so sub-threshold points are rejected
        // before the offer call; score == threshold still goes through
        // (ties matter, and the tie pool lives inside `offer`).
        let mut threshold = f64::NEG_INFINITY;
        // Minimum processed key so far (pops come out in descending key
        // order, so the running value is just the latest pop's key).
        let mut region_bound = f64::INFINITY;

        while let Some(&(maxscore, cell)) = heap.peek() {
            // Stop when even the best unprocessed cell cannot reach the
            // k-th score (non-strict continue: ties may still matter).
            if top.is_full() && maxscore.get() < threshold {
                break;
            }
            heap.pop();
            stats.cells_processed += 1;
            region_bound = maxscore.get();

            let points = grid.cell(cell).points();
            stats.points_scanned += points.len() as u64;
            scorer.scan(points.ids(), points.coords(), constraint, |id, score| {
                if score >= threshold && top.offer(Scored::new(score, id)) {
                    threshold = top.threshold();
                }
            });
            if let Some(upd) = influence.as_mut() {
                // Cells strictly above the previous region bound already
                // carry the slot — skip the sorted-list insert (at high
                // query counts the corner cells' lists are long, and this
                // probe used to dominate recomputation cost).
                if maxscore.get() <= upd.listed_above {
                    upd.table.insert(cell, upd.slot);
                }
            }

            for (dim, &dir) in dirs.iter().enumerate().take(dims) {
                let next = match &range {
                    Some(r) => grid.step_worse_in_dir(cell, dim, dir, r),
                    None => grid.step_worse_dir(cell, dim, dir),
                };
                if let Some(n) = next {
                    if stamps.mark(n) {
                        heap.push((OrderedF64::new(cell_bound(n)), n));
                        stats.heap_pushes += 1;
                    }
                }
            }
        }

        frontier.clear();
        frontier.extend(heap.drain().map(|(_, c)| c));

        let boundary_ties = top.boundary_ties();
        ComputeOutcome {
            top,
            boundary_ties,
            region_bound,
            stats,
        }
    }
}

/// One query of a batched shared recomputation ([`compute_topk_group`]).
///
/// Members of one group must agree on per-axis monotonicity (they share a
/// traversal order) and must be unconstrained — a constrained query clips
/// its traversal to a private cell range and recomputes solo.
#[derive(Debug)]
pub struct GroupMember {
    /// The query's dense slot.
    pub slot: QuerySlot,
    /// The query's scoring function.
    pub f: ScoreFn,
    /// Result size.
    pub k: usize,
    /// Cells whose maxscore under `f` is strictly above this are known to
    /// carry the slot already (see [`InfluenceUpdate::listed_above`]).
    pub listed_above: f64,
    /// Keep the previously listed superset: the influence post-pass skips
    /// the shrink-side removals for this member, so cells between the new
    /// threshold and `listed_above` stay listed. A superset region is
    /// sound — it only costs extra replay probes — and skipping the
    /// removals (plus the frontier sweep) turns a threshold flip-flop
    /// into a no-op instead of a mass relist. The caller must then keep
    /// its fed-back bound at `min(listed_above, region_bound)`.
    pub keep_superset: bool,
    /// Collect boundary ties (skyband seeding).
    pub track_ties: bool,
    /// Recycled result buffers from the previous computation.
    pub reuse: Option<TopList>,
}

/// Per-member result of a [`compute_topk_group`] traversal. The fields
/// mirror [`ComputeOutcome`], except that `region_bound` is the member's
/// final k-th score (`−∞` when deficient): every cell with maxscore ≥ it
/// was processed and is covered by the member's influence lists.
#[derive(Debug)]
pub struct GroupOutcome {
    /// The member's dense slot (copied through for the caller's re-match).
    pub slot: QuerySlot,
    /// The top-k list (≤ k entries, best first).
    pub top: TopList,
    /// Candidates tying the k-th score (when tie tracking was requested).
    pub boundary_ties: Vec<Scored>,
    /// The member's influence-region bound — feed back as `listed_above`.
    pub region_bound: f64,
}

/// Internal per-member traversal state of [`compute_topk_group`].
#[derive(Debug)]
pub(crate) struct GroupRun {
    m: GroupMember,
    top: TopList,
    threshold: f64,
}

/// Runs one shared grid traversal serving every member of a group —
/// the batched counterpart of N solo [`compute_topk`] calls.
///
/// Cells pop in descending *group* key order (the max of the active
/// members' cell bounds), each popped cell's coordinate block is streamed
/// once per still-interested member, and a member drops out as soon as the
/// group key falls strictly below its k-th score. Every cell a solo
/// traversal for member `m` would process has bound ≥ `m`'s final
/// threshold, hence group key ≥ that threshold, hence pops before `m` is
/// done — so each member's result is identical to its solo result.
///
/// Influence lists are maintained in a post-pass over the popped cells
/// (recorded in [`ComputeScratch::popped`]): for each member, cells with
/// bound ≥ its final threshold are inserted (unless already listed per
/// `listed_above`), and popped cells *below* the member's threshold but
/// inside its previously-listed region are removed — the shared envelope
/// covers them, so the follow-up frontier walk (which starts strictly
/// below every member's threshold) would never reach those stale entries.
/// After return, [`ComputeScratch::frontier`] holds the shared frontier
/// and the stamp epoch still marks every en-heaped cell; pass the group's
/// slots to [`crate::influence::cleanup_group_from_frontier`] to finish
/// the sweep.
///
/// `members` is drained (its buffers are recycled by the caller);
/// `results` is cleared and refilled with one [`GroupOutcome`] per member,
/// in member order.
// lint: hot-path
pub fn compute_topk_group(
    grid: &Grid,
    scratch: &mut ComputeScratch,
    influence: &mut InfluenceTable,
    members: &mut Vec<GroupMember>,
    results: &mut Vec<GroupOutcome>,
) -> ComputeStats {
    results.clear();
    let mut stats = ComputeStats::default();
    if members.is_empty() {
        scratch.frontier.clear();
        return stats;
    }
    let dims = grid.dims();
    debug_assert!(members.iter().all(|m| m.f.dims() == dims));
    debug_assert!(
        members
            .iter()
            .all(|m| (0..dims).all(|d| m.f.monotonicity(d) == members[0].f.monotonicity(d))),
        "group members must share per-axis monotonicity"
    );

    let ComputeScratch {
        stamps,
        heap,
        frontier,
        popped,
        runs,
        active,
        ..
    } = scratch;
    runs.clear();
    runs.extend(members.drain(..).map(|mut m| {
        let top = match m.reuse.take() {
            Some(mut t) => {
                t.reset(m.k, m.track_ties);
                t
            }
            None if m.track_ties => TopList::with_tie_tracking(m.k),
            None => TopList::new(m.k),
        };
        GroupRun {
            m,
            top,
            threshold: f64::NEG_INFINITY,
        }
    }));

    let mut dirs = [Monotonicity::Increasing; MAX_DIMS];
    for (dim, dir) in dirs.iter_mut().enumerate().take(dims) {
        *dir = runs[0].m.f.monotonicity(dim);
    }
    let start = grid.best_corner(&runs[0].m.f);

    // Max cell bound over the members still traversing: the heap key. A
    // finished member stops inflating the keys of cells pushed later, so
    // the group search narrows as members complete. Only the active
    // member indices are consulted, so a popped cell costs the *live*
    // member count, not the group size — in a recompute storm most
    // members retire within the first few cells and the deep tail of the
    // traversal is paid only by the members that still need it.
    let group_bound = |runs: &[GroupRun], active: &[u32], cell: CellId| -> f64 {
        let (lo, hi) = grid.cell_lo_hi(cell);
        let mut best = f64::NEG_INFINITY;
        for &ri in active {
            best = best.max(kernel::cell_bound(&runs[ri as usize].m.f, lo, hi));
        }
        best
    };
    let active_idx = active;
    active_idx.clear();
    active_idx.extend(0..runs.len() as u32);

    heap.clear();
    popped.clear();
    stamps.begin();
    stamps.mark(start);
    heap.push((OrderedF64::new(group_bound(runs, active_idx, start)), start));
    stats.heap_pushes += 1;

    while let Some(&(key, cell)) = heap.peek() {
        let key = key.get();
        let mut ai = 0;
        while ai < active_idx.len() {
            let r = &mut runs[active_idx[ai] as usize];
            // Strictly below the member's k-th score: no remaining cell
            // (keys descend) can contribute to it. Ties continue.
            if r.top.is_full() && key < r.threshold {
                active_idx.swap_remove(ai);
            } else {
                ai += 1;
            }
        }
        if active_idx.is_empty() {
            break;
        }
        heap.pop();
        stats.cells_processed += 1;
        popped.push((key, cell));

        let points = grid.cell(cell).points();
        let (lo, hi) = grid.cell_lo_hi(cell);
        for &ri in active_idx.iter() {
            let r = &mut runs[ri as usize];
            // The cell may be on the heap for *other* members only: skip
            // the scan when this member's own bound is already beaten
            // (strictly — boundary ties can still hold result tuples).
            if r.top.is_full() && kernel::cell_bound(&r.m.f, lo, hi) < r.threshold {
                continue;
            }
            stats.points_scanned += points.len() as u64;
            let top = &mut r.top;
            let mut threshold = r.threshold;
            kernel::scan_block(
                &r.m.f,
                dims,
                points.ids(),
                points.coords(),
                None,
                |id, score| {
                    if score >= threshold && top.offer(Scored::new(score, id)) {
                        threshold = top.threshold();
                    }
                },
            );
            r.threshold = threshold;
        }

        for (dim, &dir) in dirs.iter().enumerate().take(dims) {
            if let Some(n) = grid.step_worse_dir(cell, dim, dir) {
                if stamps.mark(n) {
                    heap.push((OrderedF64::new(group_bound(runs, active_idx, n)), n));
                    stats.heap_pushes += 1;
                }
            }
        }
    }

    frontier.clear();
    frontier.extend(heap.drain().map(|(_, c)| c));

    // Influence post-pass over the shared envelope. Every cell with
    // bound ≥ a member's final threshold was popped (see above), so
    // inserting those popped cells covers the member's influence region
    // exactly; popped cells below the threshold but at/above the member's
    // previously-listed bound may carry stale entries that the frontier
    // walk (seeded strictly below every threshold) cannot reach — remove
    // them here.
    for r in runs.iter() {
        let t_final = r.top.threshold();
        for &(key, cell) in popped.iter() {
            // Pop keys are non-increasing and, while a member is active,
            // upper-bound its cell bound; every cell with bound ≥ the
            // member's final threshold pops (with key ≥ that bound)
            // before the member retires. So once the key drops below the
            // threshold no later cell can need an insert — a
            // superset-keeping member (no removals) is finished. A
            // resyncing member keeps scanning: cells popped after it
            // retired can carry stale entries at keys the bound no longer
            // dominates, and a missed removal would strand an influence
            // entry that the frontier walk (blocked by this epoch's
            // stamps) can never reach.
            if r.m.keep_superset && key < t_final {
                break;
            }
            let (lo, hi) = grid.cell_lo_hi(cell);
            let b = kernel::cell_bound(&r.m.f, lo, hi);
            if b >= t_final {
                if b <= r.m.listed_above {
                    influence.insert(cell, r.m.slot);
                }
            } else if !r.m.keep_superset && b >= r.m.listed_above {
                influence.remove(cell, r.m.slot);
            }
        }
    }

    for r in runs.drain(..) {
        let region_bound = r.top.threshold();
        let boundary_ties = r.top.boundary_ties();
        results.push(GroupOutcome {
            slot: r.m.slot,
            top: r.top,
            boundary_ties,
            region_bound,
        });
    }
    stats
}

/// Reusable traversal buffers owned by one maintenance domain (engine or
/// shard). Keeping them here makes steady-state processing cycles
/// allocation-free: the computation heap and the frontier list retain
/// their capacity across ticks.
#[derive(Debug)]
pub struct ComputeScratch {
    /// Reusable visited markers.
    pub stamps: VisitStamps,
    /// Reusable coordinate buffer.
    pub coords: [f64; MAX_DIMS],
    /// Cell heap of the top-k traversal (drained into `frontier` on
    /// completion).
    pub heap: BinaryHeap<(OrderedF64, CellId)>,
    /// Cells en-heaped but not processed by the last [`compute_topk`]
    /// call: the clean-up walk's seed list, consumed in place.
    pub frontier: Vec<CellId>,
    /// `(pop key, cell)` pairs processed by the last
    /// [`compute_topk_group`] call, in pop order (keys non-increasing) —
    /// the shared envelope its influence post-pass iterates. The recorded
    /// group key upper-bounds every then-active member's cell bound, so
    /// the post-pass can stop a member's scan at the first key below its
    /// threshold.
    pub popped: Vec<(f64, CellId)>,
    /// Per-member traversal slots of [`compute_topk_group`], drained into
    /// the outcomes on completion (the vec itself keeps its capacity).
    pub(crate) runs: Vec<GroupRun>,
    /// Indices of the members still traversing, reused across group
    /// computations.
    pub(crate) active: Vec<u32>,
}

impl ComputeScratch {
    /// Creates scratch state for a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> ComputeScratch {
        ComputeScratch {
            stamps: VisitStamps::new(num_cells),
            coords: [0.0; MAX_DIMS],
            heap: BinaryHeap::new(),
            frontier: Vec::new(),
            popped: Vec::new(),
            runs: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Deep size estimate of the retained buffers in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.stamps.space_bytes()
            + self.heap.capacity() * std::mem::size_of::<(OrderedF64, CellId)>()
            + self.frontier.capacity() * std::mem::size_of::<CellId>()
            + self.popped.capacity() * std::mem::size_of::<(f64, CellId)>()
            + self.runs.capacity() * std::mem::size_of::<GroupRun>()
            + self.active.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::TupleId;
    use tkm_grid::CellMode;

    /// No window exists in this harness at all: the traversal reads every
    /// coordinate from the grid's cell blocks, which is the whole point of
    /// the coordinate-inline layout (and the compile-time guarantee that
    /// it performs zero `TupleLookup::coords` calls).
    fn setup(points: &[[f64; 2]], per_dim: usize) -> (Grid, ComputeScratch, InfluenceTable) {
        let mut grid = Grid::new(2, per_dim, CellMode::Fifo).unwrap();
        for (i, p) in points.iter().enumerate() {
            grid.insert_point(p, TupleId(i as u64));
        }
        let scratch = ComputeScratch::new(grid.num_cells());
        let influence = InfluenceTable::new(grid.num_cells());
        (grid, scratch, influence)
    }

    fn naive_topk(points: &[[f64; 2]], f: &ScoreFn, k: usize, r: Option<&Rect>) -> Vec<Scored> {
        let mut all: Vec<Scored> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| r.is_none_or(|r| r.contains(&p[..])))
            .map(|(i, p)| Scored::new(f.score(&p[..]), TupleId(i as u64)))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    /// Figure 5(a): top-1 with f = x1 + 2·x2 in a 7×7 grid; the search must
    /// process only the cells intersecting the influence region.
    #[test]
    fn figure5_processes_minimal_cells() {
        let points = [[0.55, 0.90], [0.90, 0.55]]; // p1 (winner), p2
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 1, None)[..]);
        assert_eq!(out.top.as_slice()[0].id, TupleId(0));
        // score(p1) = 0.55 + 1.8 = 2.35. Cells with maxscore ≥ 2.35 in the
        // 7×7 grid: count them directly.
        let expected: u64 = (0..49)
            .filter(|i| grid.maxscore(CellId(*i), &f) >= 2.35)
            .count() as u64;
        assert_eq!(out.stats.cells_processed, expected);
        // Every processed cell carries the influence entry.
        let listed = (0..49)
            .filter(|i| influence.contains(CellId(*i), QuerySlot(0)))
            .count() as u64;
        assert_eq!(listed, expected);
        // Frontier cells were en-heaped but not processed.
        for c in &scratch.frontier {
            assert!(!influence.contains(*c, QuerySlot(0)));
            assert!(scratch.stamps.is_marked(*c));
        }
    }

    #[test]
    fn empty_window_processes_everything_and_finds_nothing() {
        let (grid, mut scratch, mut influence) = setup(&[], 4);
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(3))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert!(out.top.is_empty());
        assert_eq!(out.stats.cells_processed, 16, "deficient search floods");
        assert!(scratch.frontier.is_empty());
    }

    #[test]
    fn mixed_monotonicity_figure7a() {
        // f = x1 - x2, top-2 (Figure 7a): best points have large x1,
        // small x2.
        let points = [[0.95, 0.1], [0.8, 0.05], [0.3, 0.9], [0.5, 0.4]];
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 2, None)[..]);
    }

    #[test]
    fn product_function_figure7b() {
        let points = [[0.9, 0.8], [0.99, 0.2], [0.5, 0.5]];
        let f = ScoreFn::product(vec![0.0, 0.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(0), "0.72 beats 0.198");
    }

    /// Figure 12: the constrained search starts at the best cell inside R
    /// and ignores outside points (p1 in the figure).
    #[test]
    fn constrained_query_figure12() {
        let points = [[0.55, 0.95], [0.62, 0.68], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let r = Rect::new(vec![0.5, 0.45], vec![0.8, 0.75]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(2))),
            &f,
            1,
            Some(&r),
            false,
            None,
        );
        assert_eq!(
            out.top.as_slice(),
            &naive_topk(&points, &f, 1, Some(&r))[..]
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(1), "p2 wins inside R");
        // Cells outside the constraint range are never touched.
        let range = grid.cell_range(&r);
        for (cid, _) in grid.cells() {
            if influence.contains(cid, QuerySlot(2)) {
                let cc = grid.cell_coords(cid);
                for ((c, lo), hi) in cc.iter().zip(&range.0).zip(&range.1).take(2) {
                    assert!(c >= lo && c <= hi);
                }
            }
        }
    }

    #[test]
    fn tie_tracking_collects_boundary_ties() {
        // Four points, three tie at the k-th score.
        let points = [[0.5, 0.5], [0.6, 0.4], [0.4, 0.6], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            2,
            None,
            true,
            None,
        );
        // Top-2: id3 (1.8), id0 (1.0, oldest of the ties).
        let ids: Vec<u64> = out.top.as_slice().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 0]);
        let tie_ids: Vec<u64> = out.boundary_ties.iter().map(|e| e.id.0).collect();
        assert_eq!(tie_ids, vec![1, 2], "both 1.0-ties outside the result");
    }

    #[test]
    fn k_larger_than_population() {
        let points = [[0.2, 0.3], [0.8, 0.1]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            5,
            None,
            false,
            None,
        );
        assert_eq!(out.top.len(), 2);
        assert!(!out.top.is_full());
        assert!(
            scratch.frontier.is_empty(),
            "deficient search floods the grid"
        );
    }

    /// A shared group traversal must produce, per member, the identical
    /// result list and the identical influence coverage as solo
    /// traversals.
    #[test]
    fn group_traversal_matches_solo() {
        let points = [
            [0.55, 0.90],
            [0.90, 0.55],
            [0.10, 0.95],
            [0.40, 0.40],
            [0.75, 0.20],
            [0.33, 0.66],
            [0.80, 0.80],
        ];
        let fs = [
            ScoreFn::linear(vec![1.0, 2.0]).unwrap(),
            ScoreFn::linear(vec![2.0, 1.0]).unwrap(),
            ScoreFn::product(vec![0.1, 0.1]).unwrap(),
        ];
        let (grid, mut scratch, mut solo_influence) = setup(&points, 7);
        let mut solo_tops = Vec::new();
        let mut solo_listed = Vec::new();
        for (i, f) in fs.iter().enumerate() {
            let out = compute_topk(
                &grid,
                &mut scratch,
                Some(InfluenceUpdate::fresh(
                    &mut solo_influence,
                    QuerySlot(i as u32),
                )),
                f,
                2,
                None,
                true,
                None,
            );
            solo_tops.push((out.top.as_slice().to_vec(), out.boundary_ties.clone()));
            let listed: Vec<u32> = (0..grid.num_cells() as u32)
                .filter(|c| solo_influence.contains(CellId(*c), QuerySlot(i as u32)))
                .collect();
            solo_listed.push(listed);
        }

        let mut group_influence = InfluenceTable::new(grid.num_cells());
        let mut members: Vec<GroupMember> = fs
            .iter()
            .enumerate()
            .map(|(i, f)| GroupMember {
                slot: QuerySlot(i as u32),
                f: f.clone(),
                k: 2,
                listed_above: f64::INFINITY,
                keep_superset: false,
                track_ties: true,
                reuse: None,
            })
            .collect();
        let mut results = Vec::new();
        let stats = compute_topk_group(
            &grid,
            &mut scratch,
            &mut group_influence,
            &mut members,
            &mut results,
        );
        assert!(members.is_empty(), "members are drained");
        assert_eq!(results.len(), fs.len());
        assert!(stats.cells_processed > 0);

        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.slot, QuerySlot(i as u32));
            assert_eq!(r.top.as_slice(), &solo_tops[i].0[..], "member {i} top");
            assert_eq!(r.boundary_ties, solo_tops[i].1, "member {i} ties");
            let listed: Vec<u32> = (0..grid.num_cells() as u32)
                .filter(|c| group_influence.contains(CellId(*c), QuerySlot(i as u32)))
                .collect();
            assert_eq!(listed, solo_listed[i], "member {i} influence coverage");
        }
        // Frontier cells sit strictly below every member's threshold and
        // carry no fresh influence entries.
        for c in &scratch.frontier {
            for (i, r) in results.iter().enumerate() {
                let (lo, hi) = grid.cell_lo_hi(*c);
                assert!(kernel::cell_bound(&fs[i], lo, hi) < r.region_bound);
            }
        }
    }

    /// A deficient member (k beyond the population) keeps the group
    /// traversal flooding the whole grid, exactly like a solo search.
    #[test]
    fn group_with_deficient_member_floods() {
        let points = [[0.2, 0.3], [0.8, 0.1]];
        let (grid, mut scratch, mut influence) = setup(&points, 4);
        let mut members = vec![
            GroupMember {
                slot: QuerySlot(0),
                f: ScoreFn::linear(vec![1.0, 1.0]).unwrap(),
                k: 1,
                listed_above: f64::INFINITY,
                keep_superset: false,
                track_ties: false,
                reuse: None,
            },
            GroupMember {
                slot: QuerySlot(1),
                f: ScoreFn::linear(vec![2.0, 0.5]).unwrap(),
                k: 5,
                listed_above: f64::INFINITY,
                keep_superset: false,
                track_ties: false,
                reuse: None,
            },
        ];
        let mut results = Vec::new();
        let stats = compute_topk_group(
            &grid,
            &mut scratch,
            &mut influence,
            &mut members,
            &mut results,
        );
        assert_eq!(stats.cells_processed, 16, "deficient member floods");
        assert!(scratch.frontier.is_empty());
        assert_eq!(results[1].top.len(), 2);
        assert_eq!(results[1].region_bound, f64::NEG_INFINITY);
        // The deficient member is listed everywhere; the satisfied member
        // only in its influence region.
        let listed0 = (0..16)
            .filter(|c| influence.contains(CellId(*c), QuerySlot(0)))
            .count();
        let listed1 = (0..16)
            .filter(|c| influence.contains(CellId(*c), QuerySlot(1)))
            .count();
        assert_eq!(listed1, 16);
        assert!(listed0 < 16);
    }

    /// Scratch reuse: back-to-back computations leave no stale state and
    /// keep their buffer capacity.
    #[test]
    fn scratch_is_reusable_across_calls() {
        let points = [[0.2, 0.9], [0.9, 0.2], [0.6, 0.6], [0.1, 0.1]];
        let (grid, mut scratch, mut influence) = setup(&points, 6);
        let f1 = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let f2 = ScoreFn::linear(vec![-1.0, 1.0]).unwrap();
        let first = compute_topk(&grid, &mut scratch, None, &f1, 2, None, false, None);
        let heap_cap = scratch.heap.capacity();
        let again = compute_topk(&grid, &mut scratch, None, &f1, 2, None, false, None);
        assert_eq!(first.top.as_slice(), again.top.as_slice());
        assert!(scratch.heap.capacity() >= heap_cap, "capacity retained");
        // A different query direction still computes exactly.
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(9))),
            &f2,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f2, 1, None)[..]);
        assert!(scratch.space_bytes() > std::mem::size_of::<ComputeScratch>());
    }
}
