//! The top-k computation module (paper Figure 6).
//!
//! Visits grid cells in descending `maxscore` order without scoring every
//! cell up front: starting from the best-corner cell, each processed cell
//! en-heaps its `d` "one step worse" neighbours, whose maxscores bound all
//! remaining cells (Figure 5b). The search stops when the best unprocessed
//! cell cannot contain a tuple that beats the current k-th score, which
//! makes the set of processed cells exactly the cells intersecting the
//! query's influence region — the minimal set that must be book-kept.
//!
//! Differences from the paper's pseudo-code, both deliberate:
//!
//! * the loop continues while the heap key is `≥` the current k-th score
//!   (the paper uses `>`); with the workspace tie-break (older tuple wins
//!   equal scores) a boundary cell whose maxscore ties the threshold can
//!   still contain result tuples, and the non-strict test keeps the engines
//!   exact under ties at negligible extra cost;
//! * with tie tracking enabled (SMA), candidates displaced at the k-th
//!   boundary with equal score are collected so the skyband can be seeded
//!   with the *full* k-skyband of tuples scoring at least the threshold.
//!
//! Constrained queries (§7) pass a constraint rectangle: the traversal is
//! clipped to the cells overlapping it and points outside are filtered.
//!
//! The traversal state (visit stamps, the cell heap, the frontier list)
//! lives in a caller-owned [`ComputeScratch`]: engines recompute queries
//! every tick, and reusing the buffers makes steady-state recomputations
//! allocation-free apart from the result list itself.

use std::collections::BinaryHeap;

use crate::result::TopList;
use tkm_common::{OrderedF64, QuerySlot, Rect, ScoreFn, Scored, TupleId, MAX_DIMS};
use tkm_grid::{CellId, Grid, InfluenceTable, VisitStamps};
use tkm_window::TupleLookup;

/// Counters of one computation-module invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Cells de-heaped and processed.
    pub cells_processed: u64,
    /// Points examined in processed cells.
    pub points_scanned: u64,
    /// Cells pushed onto the heap.
    pub heap_pushes: u64,
}

/// Result of one computation-module invocation.
///
/// The frontier (cells en-heaped but not processed at termination — the
/// seeds of the influence clean-up walk, Figure 9 line 14) is *not* part
/// of this value: it is left in [`ComputeScratch::frontier`] so the
/// follow-up [`crate::influence::cleanup_from_frontier`] walk can consume
/// it in place without an allocation.
#[derive(Debug)]
pub struct ComputeOutcome {
    /// The top-k list (≤ k entries, best first).
    pub top: TopList,
    /// Candidates outside the top-k whose score ties the k-th score
    /// (present only when tie tracking was requested).
    pub boundary_ties: Vec<Scored>,
    /// Access counters.
    pub stats: ComputeStats,
}

/// Runs the top-k computation. With `influence = Some((table, slot))` —
/// the monitoring path — the query's dense `slot` is registered in the
/// table's influence list of every processed cell; with `influence = None`
/// the traversal is a side-effect-free *snapshot* query. The grid itself
/// is only read, so one shared grid can serve concurrent computations as
/// long as each caller brings its own table and scratch. `scratch` must be
/// sized for the same grid; after return its stamp epoch still marks every
/// en-heaped cell and [`ComputeScratch::frontier`] holds the unprocessed
/// frontier — the clean-up walk relies on both.
///
/// `reuse` recycles a previous result's [`TopList`] buffers into the new
/// result (engines pass the query's old top-list so recomputations do not
/// allocate); pass `None` to build a fresh list.
#[allow(clippy::too_many_arguments)]
pub fn compute_topk<L: TupleLookup>(
    grid: &Grid,
    scratch: &mut ComputeScratch,
    lookup: &L,
    mut influence: Option<(&mut InfluenceTable, QuerySlot)>,
    f: &ScoreFn,
    k: usize,
    constraint: Option<&Rect>,
    track_ties: bool,
    reuse: Option<TopList>,
) -> ComputeOutcome {
    debug_assert_eq!(grid.dims(), f.dims());
    debug_assert_eq!(scratch.stamps.len(), grid.num_cells());
    let dims = grid.dims();
    let mut stats = ComputeStats::default();
    let mut top = match reuse {
        Some(mut t) => {
            t.reset(k, track_ties);
            t
        }
        None if track_ties => TopList::with_tie_tracking(k),
        None => TopList::new(k),
    };

    let range = constraint.map(|r| grid.cell_range(r));
    let start = match &range {
        Some(r) => grid.best_corner_in(r, f),
        None => grid.best_corner(f),
    };

    // With a constraint the heap keys are clipped maxscores (cell ∩ R):
    // tighter for boundary cells, and mandatory when `f` is only monotone
    // inside R (piecewise-monotone pieces).
    let cell_bound = |grid: &Grid, cell: CellId| match constraint {
        Some(r) => grid.maxscore_in(cell, f, r),
        None => grid.maxscore(cell, f),
    };

    let ComputeScratch {
        stamps,
        heap,
        frontier,
        ..
    } = scratch;
    heap.clear();
    stamps.begin();
    stamps.mark(start);
    heap.push((OrderedF64::new(cell_bound(grid, start)), start));
    stats.heap_pushes += 1;

    while let Some(&(maxscore, cell)) = heap.peek() {
        // Stop when even the best unprocessed cell cannot reach the k-th
        // score (non-strict continue: ties may still matter).
        if top.is_full() && maxscore.get() < top.threshold() {
            break;
        }
        heap.pop();
        stats.cells_processed += 1;

        for id in grid.cell(cell).points().iter() {
            stats.points_scanned += 1;
            let coords = lookup
                .coords(id)
                .expect("grid must only index valid tuples");
            if let Some(r) = constraint {
                if !r.contains(coords) {
                    continue;
                }
            }
            top.offer(Scored::new(f.score(coords), id));
        }
        if let Some((table, slot)) = influence.as_mut() {
            table.insert(cell, *slot);
        }

        for dim in 0..dims {
            let next = match &range {
                Some(r) => grid.step_worse_in(cell, dim, f, r),
                None => grid.step_worse(cell, dim, f),
            };
            if let Some(n) = next {
                if stamps.mark(n) {
                    heap.push((OrderedF64::new(cell_bound(grid, n)), n));
                    stats.heap_pushes += 1;
                }
            }
        }
    }

    frontier.clear();
    frontier.extend(heap.drain().map(|(_, c)| c));

    let boundary_ties = top.boundary_ties();
    ComputeOutcome {
        top,
        boundary_ties,
        stats,
    }
}

/// Reusable traversal and replay buffers owned by one maintenance domain
/// (engine or shard). Keeping them here makes steady-state processing
/// cycles allocation-free: the computation heap, the frontier list and the
/// per-cell replay buffers all retain their capacity across ticks.
#[derive(Debug)]
pub struct ComputeScratch {
    /// Reusable visited markers.
    pub stamps: VisitStamps,
    /// Reusable coordinate buffer.
    pub coords: [f64; MAX_DIMS],
    /// Cell heap of the top-k traversal (drained into `frontier` on
    /// completion).
    pub heap: BinaryHeap<(OrderedF64, CellId)>,
    /// Cells en-heaped but not processed by the last [`compute_topk`]
    /// call: the clean-up walk's seed list, consumed in place.
    pub frontier: Vec<CellId>,
    /// Live tuple ids of the cell run being replayed (cell-grouped event
    /// replay).
    pub tick_ids: Vec<TupleId>,
    /// Coordinates of `tick_ids`, flattened `dims` apiece.
    pub tick_coords: Vec<f64>,
}

impl ComputeScratch {
    /// Creates scratch state for a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> ComputeScratch {
        ComputeScratch {
            stamps: VisitStamps::new(num_cells),
            coords: [0.0; MAX_DIMS],
            heap: BinaryHeap::new(),
            frontier: Vec::new(),
            tick_ids: Vec::new(),
            tick_coords: Vec::new(),
        }
    }

    /// Deep size estimate of the retained buffers in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.stamps.space_bytes()
            + self.heap.capacity() * std::mem::size_of::<(OrderedF64, CellId)>()
            + self.frontier.capacity() * std::mem::size_of::<CellId>()
            + self.tick_ids.capacity() * std::mem::size_of::<TupleId>()
            + self.tick_coords.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Timestamp, TupleId};
    use tkm_grid::CellMode;
    use tkm_window::{Window, WindowSpec};

    fn setup(
        points: &[[f64; 2]],
        per_dim: usize,
    ) -> (Grid, Window, ComputeScratch, InfluenceTable) {
        let mut grid = Grid::new(2, per_dim, CellMode::Fifo).unwrap();
        let mut w = Window::new(2, WindowSpec::Count(points.len().max(1))).unwrap();
        for p in points {
            let id = w.insert(p, Timestamp(0)).unwrap();
            grid.insert_point(p, id);
        }
        let scratch = ComputeScratch::new(grid.num_cells());
        let influence = InfluenceTable::new(grid.num_cells());
        (grid, w, scratch, influence)
    }

    fn naive_topk(points: &[[f64; 2]], f: &ScoreFn, k: usize, r: Option<&Rect>) -> Vec<Scored> {
        let mut all: Vec<Scored> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| r.is_none_or(|r| r.contains(&p[..])))
            .map(|(i, p)| Scored::new(f.score(&p[..]), TupleId(i as u64)))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    /// Figure 5(a): top-1 with f = x1 + 2·x2 in a 7×7 grid; the search must
    /// process only the cells intersecting the influence region.
    #[test]
    fn figure5_processes_minimal_cells() {
        let points = [[0.55, 0.90], [0.90, 0.55]]; // p1 (winner), p2
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(0))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 1, None)[..]);
        assert_eq!(out.top.as_slice()[0].id, TupleId(0));
        // score(p1) = 0.55 + 1.8 = 2.35. Cells with maxscore ≥ 2.35 in the
        // 7×7 grid: count them directly.
        let expected: u64 = (0..49)
            .filter(|i| grid.maxscore(CellId(*i), &f) >= 2.35)
            .count() as u64;
        assert_eq!(out.stats.cells_processed, expected);
        // Every processed cell carries the influence entry.
        let listed = (0..49)
            .filter(|i| influence.contains(CellId(*i), QuerySlot(0)))
            .count() as u64;
        assert_eq!(listed, expected);
        // Frontier cells were en-heaped but not processed.
        for c in &scratch.frontier {
            assert!(!influence.contains(*c, QuerySlot(0)));
            assert!(scratch.stamps.is_marked(*c));
        }
    }

    #[test]
    fn empty_window_processes_everything_and_finds_nothing() {
        let (grid, w, mut scratch, mut influence) = setup(&[], 4);
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(3))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert!(out.top.is_empty());
        assert_eq!(out.stats.cells_processed, 16, "deficient search floods");
        assert!(scratch.frontier.is_empty());
    }

    #[test]
    fn mixed_monotonicity_figure7a() {
        // f = x1 - x2, top-2 (Figure 7a): best points have large x1,
        // small x2.
        let points = [[0.95, 0.1], [0.8, 0.05], [0.3, 0.9], [0.5, 0.4]];
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(1))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 2, None)[..]);
    }

    #[test]
    fn product_function_figure7b() {
        let points = [[0.9, 0.8], [0.99, 0.2], [0.5, 0.5]];
        let f = ScoreFn::product(vec![0.0, 0.0]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(1))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(0), "0.72 beats 0.198");
    }

    /// Figure 12: the constrained search starts at the best cell inside R
    /// and ignores outside points (p1 in the figure).
    #[test]
    fn constrained_query_figure12() {
        let points = [[0.55, 0.95], [0.62, 0.68], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let r = Rect::new(vec![0.5, 0.45], vec![0.8, 0.75]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(2))),
            &f,
            1,
            Some(&r),
            false,
            None,
        );
        assert_eq!(
            out.top.as_slice(),
            &naive_topk(&points, &f, 1, Some(&r))[..]
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(1), "p2 wins inside R");
        // Cells outside the constraint range are never touched.
        let range = grid.cell_range(&r);
        for (cid, _) in grid.cells() {
            if influence.contains(cid, QuerySlot(2)) {
                let cc = grid.cell_coords(cid);
                for ((c, lo), hi) in cc.iter().zip(&range.0).zip(&range.1).take(2) {
                    assert!(c >= lo && c <= hi);
                }
            }
        }
    }

    #[test]
    fn tie_tracking_collects_boundary_ties() {
        // Four points, three tie at the k-th score.
        let points = [[0.5, 0.5], [0.6, 0.4], [0.4, 0.6], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(0))),
            &f,
            2,
            None,
            true,
            None,
        );
        // Top-2: id3 (1.8), id0 (1.0, oldest of the ties).
        let ids: Vec<u64> = out.top.as_slice().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 0]);
        let tie_ids: Vec<u64> = out.boundary_ties.iter().map(|e| e.id.0).collect();
        assert_eq!(tie_ids, vec![1, 2], "both 1.0-ties outside the result");
    }

    #[test]
    fn k_larger_than_population() {
        let points = [[0.2, 0.3], [0.8, 0.1]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, w, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(0))),
            &f,
            5,
            None,
            false,
            None,
        );
        assert_eq!(out.top.len(), 2);
        assert!(!out.top.is_full());
        assert!(
            scratch.frontier.is_empty(),
            "deficient search floods the grid"
        );
    }

    /// Scratch reuse: back-to-back computations leave no stale state and
    /// keep their buffer capacity.
    #[test]
    fn scratch_is_reusable_across_calls() {
        let points = [[0.2, 0.9], [0.9, 0.2], [0.6, 0.6], [0.1, 0.1]];
        let (grid, w, mut scratch, mut influence) = setup(&points, 6);
        let f1 = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let f2 = ScoreFn::linear(vec![-1.0, 1.0]).unwrap();
        let first = compute_topk(&grid, &mut scratch, &w, None, &f1, 2, None, false, None);
        let heap_cap = scratch.heap.capacity();
        let again = compute_topk(&grid, &mut scratch, &w, None, &f1, 2, None, false, None);
        assert_eq!(first.top.as_slice(), again.top.as_slice());
        assert!(scratch.heap.capacity() >= heap_cap, "capacity retained");
        // A different query direction still computes exactly.
        let out = compute_topk(
            &grid,
            &mut scratch,
            &w,
            Some((&mut influence, QuerySlot(9))),
            &f2,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f2, 1, None)[..]);
        assert!(scratch.space_bytes() > std::mem::size_of::<ComputeScratch>());
    }
}
