//! The top-k computation module (paper Figure 6).
//!
//! Visits grid cells in descending `maxscore` order without scoring every
//! cell up front: starting from the best-corner cell, each processed cell
//! en-heaps its `d` "one step worse" neighbours, whose maxscores bound all
//! remaining cells (Figure 5b). The search stops when the best unprocessed
//! cell cannot contain a tuple that beats the current k-th score, which
//! makes the set of processed cells exactly the cells intersecting the
//! query's influence region — the minimal set that must be book-kept.
//!
//! Differences from the paper's pseudo-code, both deliberate:
//!
//! * the loop continues while the heap key is `≥` the current k-th score
//!   (the paper uses `>`); with the workspace tie-break (older tuple wins
//!   equal scores) a boundary cell whose maxscore ties the threshold can
//!   still contain result tuples, and the non-strict test keeps the engines
//!   exact under ties at negligible extra cost;
//! * with tie tracking enabled (SMA), candidates displaced at the k-th
//!   boundary with equal score are collected so the skyband can be seeded
//!   with the *full* k-skyband of tuples scoring at least the threshold.
//!
//! Constrained queries (§7) pass a constraint rectangle: the traversal is
//! clipped to the cells overlapping it and points outside are filtered.
//!
//! The scan of each processed cell streams `(id, coords)` pairs straight
//! out of the cell's coordinate-inline point block through the
//! dim-specialized [`crate::kernel`] scan — the traversal performs **zero**
//! per-tuple lookups into the window ring or slab (the old
//! `TupleLookup::coords` indirection is gone from the signature entirely).
//!
//! The traversal state (visit stamps, the cell heap, the frontier list)
//! lives in a caller-owned [`ComputeScratch`]: engines recompute queries
//! every tick, and reusing the buffers makes steady-state recomputations
//! allocation-free apart from the result list itself.

use std::collections::BinaryHeap;

use crate::kernel;
use crate::result::TopList;
use tkm_common::{Monotonicity, OrderedF64, QuerySlot, Rect, ScoreFn, Scored, MAX_DIMS};
use tkm_grid::{CellId, Grid, InfluenceTable, VisitStamps};

/// Counters of one computation-module invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeStats {
    /// Cells de-heaped and processed.
    pub cells_processed: u64,
    /// Points examined in processed cells.
    pub points_scanned: u64,
    /// Cells pushed onto the heap.
    pub heap_pushes: u64,
}

/// Result of one computation-module invocation.
///
/// The frontier (cells en-heaped but not processed at termination — the
/// seeds of the influence clean-up walk, Figure 9 line 14) is *not* part
/// of this value: it is left in [`ComputeScratch::frontier`] so the
/// follow-up [`crate::influence::cleanup_from_frontier`] walk can consume
/// it in place without an allocation.
#[derive(Debug)]
pub struct ComputeOutcome {
    /// The top-k list (≤ k entries, best first).
    pub top: TopList,
    /// Candidates outside the top-k whose score ties the k-th score
    /// (present only when tie tracking was requested).
    pub boundary_ties: Vec<Scored>,
    /// The minimum traversal key (maxscore, clipped under a constraint)
    /// over the processed cells: after the follow-up clean-up walk, the
    /// query's influence lists cover every cell with key strictly above
    /// this. Feed it back as [`InfluenceUpdate::listed_above`] on the next
    /// recomputation to skip the (idempotent, but at high query counts
    /// expensive) re-insert into every already-listed cell.
    pub region_bound: f64,
    /// Access counters.
    pub stats: ComputeStats,
}

/// Influence-list maintenance instructions for a monitored computation.
#[derive(Debug)]
pub struct InfluenceUpdate<'a> {
    /// The maintenance domain's influence lists.
    pub table: &'a mut InfluenceTable,
    /// The dense slot of the query being (re)computed.
    pub slot: QuerySlot,
    /// Cells whose traversal key is strictly above this are known to carry
    /// the slot already (the [`ComputeOutcome::region_bound`] of the
    /// previous computation for this slot, `+∞` for a first computation):
    /// the traversal skips their insert instead of binary-searching the
    /// corner cells' long lists on every recomputation. Boundary cells
    /// whose key ties the bound still insert — a stop mid-way through an
    /// equal-key group can leave part of that group unlisted, so only the
    /// strict region is provably covered.
    pub listed_above: f64,
}

impl<'a> InfluenceUpdate<'a> {
    /// Update instructions for a first computation (or any caller without
    /// a remembered bound): nothing is assumed listed, every processed
    /// cell inserts.
    pub fn fresh(table: &'a mut InfluenceTable, slot: QuerySlot) -> InfluenceUpdate<'a> {
        InfluenceUpdate {
            table,
            slot,
            listed_above: f64::INFINITY,
        }
    }
}

/// Runs the top-k computation. With `influence = Some(update)` — the
/// monitoring path — the query's dense slot is registered in the influence
/// list of every processed cell not already known to carry it (see
/// [`InfluenceUpdate::listed_above`]); with `influence = None` the
/// traversal is a side-effect-free *snapshot* query. The grid itself is
/// only read, so one shared grid can serve concurrent computations as long
/// as each caller brings its own table and scratch. `scratch` must be
/// sized for the same grid; after return its stamp epoch still marks every
/// en-heaped cell and [`ComputeScratch::frontier`] holds the unprocessed
/// frontier — the clean-up walk relies on both.
///
/// All point data is read from the grid's coordinate-inline cell blocks;
/// the window/slab is not consulted (and not a parameter).
///
/// `reuse` recycles a previous result's [`TopList`] buffers into the new
/// result (engines pass the query's old top-list so recomputations do not
/// allocate); pass `None` to build a fresh list.
#[allow(clippy::too_many_arguments)]
pub fn compute_topk(
    grid: &Grid,
    scratch: &mut ComputeScratch,
    influence: Option<InfluenceUpdate<'_>>,
    f: &ScoreFn,
    k: usize,
    constraint: Option<&Rect>,
    track_ties: bool,
    reuse: Option<TopList>,
) -> ComputeOutcome {
    debug_assert_eq!(grid.dims(), f.dims());
    debug_assert_eq!(scratch.stamps.len(), grid.num_cells());
    let top = match reuse {
        Some(mut t) => {
            t.reset(k, track_ties);
            t
        }
        None if track_ties => TopList::with_tie_tracking(k),
        None => TopList::new(k),
    };
    // Resolve the scoring function to a concrete monomorphized kernel once;
    // the whole traversal (bounds on every heap push, scans of every
    // processed cell) then runs without a single enum dispatch.
    kernel::dispatch(
        f,
        grid.dims(),
        Traversal {
            grid,
            scratch,
            influence,
            f,
            constraint,
            top,
        },
    )
}

/// The traversal of [`compute_topk`], generic over the concrete scorer.
struct Traversal<'a> {
    grid: &'a Grid,
    scratch: &'a mut ComputeScratch,
    influence: Option<InfluenceUpdate<'a>>,
    f: &'a ScoreFn,
    constraint: Option<&'a Rect>,
    top: TopList,
}

impl kernel::ScorerVisitor for Traversal<'_> {
    type Out = ComputeOutcome;

    fn visit<S: kernel::Scorer>(self, scorer: &S) -> ComputeOutcome {
        let Traversal {
            grid,
            scratch,
            mut influence,
            f,
            constraint,
            mut top,
        } = self;
        let dims = grid.dims();
        let mut stats = ComputeStats::default();

        let range = constraint.map(|r| grid.cell_range(r));
        let start = match &range {
            Some(r) => grid.best_corner_in(r, f),
            None => grid.best_corner(f),
        };
        // Resolve each axis' monotonicity once; the per-cell neighbour
        // steps below run on the cached directions.
        let mut dirs = [Monotonicity::Increasing; MAX_DIMS];
        for (dim, dir) in dirs.iter_mut().enumerate().take(dims) {
            *dir = f.monotonicity(dim);
        }

        // With a constraint the heap keys are clipped maxscores (cell ∩
        // R): tighter for boundary cells, and mandatory when `f` is only
        // monotone inside R (piecewise-monotone pieces). This runs on
        // every heap push.
        let cell_bound = |cell: CellId| {
            let (cell_lo, cell_hi) = grid.cell_lo_hi(cell);
            match constraint {
                Some(r) => {
                    let mut lo = [0.0f64; MAX_DIMS];
                    let mut hi = [0.0f64; MAX_DIMS];
                    for dim in 0..dims {
                        lo[dim] = cell_lo[dim].max(r.lo()[dim]);
                        hi[dim] = cell_hi[dim].min(r.hi()[dim]);
                        if lo[dim] > hi[dim] {
                            // Disjoint (possible for range-boundary
                            // cells): nothing inside can qualify.
                            return f64::NEG_INFINITY;
                        }
                    }
                    scorer.bound(&lo[..dims], &hi[..dims])
                }
                None => scorer.bound(cell_lo, cell_hi),
            }
        };

        let ComputeScratch {
            stamps,
            heap,
            frontier,
            ..
        } = scratch;
        heap.clear();
        stamps.begin();
        stamps.mark(start);
        heap.push((OrderedF64::new(cell_bound(start)), start));
        stats.heap_pushes += 1;
        // Tracks `top.threshold()` so sub-threshold points are rejected
        // before the offer call; score == threshold still goes through
        // (ties matter, and the tie pool lives inside `offer`).
        let mut threshold = f64::NEG_INFINITY;
        // Minimum processed key so far (pops come out in descending key
        // order, so the running value is just the latest pop's key).
        let mut region_bound = f64::INFINITY;

        while let Some(&(maxscore, cell)) = heap.peek() {
            // Stop when even the best unprocessed cell cannot reach the
            // k-th score (non-strict continue: ties may still matter).
            if top.is_full() && maxscore.get() < threshold {
                break;
            }
            heap.pop();
            stats.cells_processed += 1;
            region_bound = maxscore.get();

            let points = grid.cell(cell).points();
            stats.points_scanned += points.len() as u64;
            scorer.scan(points.ids(), points.coords(), constraint, |id, score| {
                if score >= threshold && top.offer(Scored::new(score, id)) {
                    threshold = top.threshold();
                }
            });
            if let Some(upd) = influence.as_mut() {
                // Cells strictly above the previous region bound already
                // carry the slot — skip the sorted-list insert (at high
                // query counts the corner cells' lists are long, and this
                // probe used to dominate recomputation cost).
                if maxscore.get() <= upd.listed_above {
                    upd.table.insert(cell, upd.slot);
                }
            }

            for (dim, &dir) in dirs.iter().enumerate().take(dims) {
                let next = match &range {
                    Some(r) => grid.step_worse_in_dir(cell, dim, dir, r),
                    None => grid.step_worse_dir(cell, dim, dir),
                };
                if let Some(n) = next {
                    if stamps.mark(n) {
                        heap.push((OrderedF64::new(cell_bound(n)), n));
                        stats.heap_pushes += 1;
                    }
                }
            }
        }

        frontier.clear();
        frontier.extend(heap.drain().map(|(_, c)| c));

        let boundary_ties = top.boundary_ties();
        ComputeOutcome {
            top,
            boundary_ties,
            region_bound,
            stats,
        }
    }
}

/// Reusable traversal buffers owned by one maintenance domain (engine or
/// shard). Keeping them here makes steady-state processing cycles
/// allocation-free: the computation heap and the frontier list retain
/// their capacity across ticks.
#[derive(Debug)]
pub struct ComputeScratch {
    /// Reusable visited markers.
    pub stamps: VisitStamps,
    /// Reusable coordinate buffer.
    pub coords: [f64; MAX_DIMS],
    /// Cell heap of the top-k traversal (drained into `frontier` on
    /// completion).
    pub heap: BinaryHeap<(OrderedF64, CellId)>,
    /// Cells en-heaped but not processed by the last [`compute_topk`]
    /// call: the clean-up walk's seed list, consumed in place.
    pub frontier: Vec<CellId>,
}

impl ComputeScratch {
    /// Creates scratch state for a grid with `num_cells` cells.
    pub fn new(num_cells: usize) -> ComputeScratch {
        ComputeScratch {
            stamps: VisitStamps::new(num_cells),
            coords: [0.0; MAX_DIMS],
            heap: BinaryHeap::new(),
            frontier: Vec::new(),
        }
    }

    /// Deep size estimate of the retained buffers in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.stamps.space_bytes()
            + self.heap.capacity() * std::mem::size_of::<(OrderedF64, CellId)>()
            + self.frontier.capacity() * std::mem::size_of::<CellId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::TupleId;
    use tkm_grid::CellMode;

    /// No window exists in this harness at all: the traversal reads every
    /// coordinate from the grid's cell blocks, which is the whole point of
    /// the coordinate-inline layout (and the compile-time guarantee that
    /// it performs zero `TupleLookup::coords` calls).
    fn setup(points: &[[f64; 2]], per_dim: usize) -> (Grid, ComputeScratch, InfluenceTable) {
        let mut grid = Grid::new(2, per_dim, CellMode::Fifo).unwrap();
        for (i, p) in points.iter().enumerate() {
            grid.insert_point(p, TupleId(i as u64));
        }
        let scratch = ComputeScratch::new(grid.num_cells());
        let influence = InfluenceTable::new(grid.num_cells());
        (grid, scratch, influence)
    }

    fn naive_topk(points: &[[f64; 2]], f: &ScoreFn, k: usize, r: Option<&Rect>) -> Vec<Scored> {
        let mut all: Vec<Scored> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| r.is_none_or(|r| r.contains(&p[..])))
            .map(|(i, p)| Scored::new(f.score(&p[..]), TupleId(i as u64)))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(k);
        all
    }

    /// Figure 5(a): top-1 with f = x1 + 2·x2 in a 7×7 grid; the search must
    /// process only the cells intersecting the influence region.
    #[test]
    fn figure5_processes_minimal_cells() {
        let points = [[0.55, 0.90], [0.90, 0.55]]; // p1 (winner), p2
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 1, None)[..]);
        assert_eq!(out.top.as_slice()[0].id, TupleId(0));
        // score(p1) = 0.55 + 1.8 = 2.35. Cells with maxscore ≥ 2.35 in the
        // 7×7 grid: count them directly.
        let expected: u64 = (0..49)
            .filter(|i| grid.maxscore(CellId(*i), &f) >= 2.35)
            .count() as u64;
        assert_eq!(out.stats.cells_processed, expected);
        // Every processed cell carries the influence entry.
        let listed = (0..49)
            .filter(|i| influence.contains(CellId(*i), QuerySlot(0)))
            .count() as u64;
        assert_eq!(listed, expected);
        // Frontier cells were en-heaped but not processed.
        for c in &scratch.frontier {
            assert!(!influence.contains(*c, QuerySlot(0)));
            assert!(scratch.stamps.is_marked(*c));
        }
    }

    #[test]
    fn empty_window_processes_everything_and_finds_nothing() {
        let (grid, mut scratch, mut influence) = setup(&[], 4);
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(3))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert!(out.top.is_empty());
        assert_eq!(out.stats.cells_processed, 16, "deficient search floods");
        assert!(scratch.frontier.is_empty());
    }

    #[test]
    fn mixed_monotonicity_figure7a() {
        // f = x1 - x2, top-2 (Figure 7a): best points have large x1,
        // small x2.
        let points = [[0.95, 0.1], [0.8, 0.05], [0.3, 0.9], [0.5, 0.4]];
        let f = ScoreFn::linear(vec![1.0, -1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            2,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f, 2, None)[..]);
    }

    #[test]
    fn product_function_figure7b() {
        let points = [[0.9, 0.8], [0.99, 0.2], [0.5, 0.5]];
        let f = ScoreFn::product(vec![0.0, 0.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(1))),
            &f,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(0), "0.72 beats 0.198");
    }

    /// Figure 12: the constrained search starts at the best cell inside R
    /// and ignores outside points (p1 in the figure).
    #[test]
    fn constrained_query_figure12() {
        let points = [[0.55, 0.95], [0.62, 0.68], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let r = Rect::new(vec![0.5, 0.45], vec![0.8, 0.75]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 7);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(2))),
            &f,
            1,
            Some(&r),
            false,
            None,
        );
        assert_eq!(
            out.top.as_slice(),
            &naive_topk(&points, &f, 1, Some(&r))[..]
        );
        assert_eq!(out.top.as_slice()[0].id, TupleId(1), "p2 wins inside R");
        // Cells outside the constraint range are never touched.
        let range = grid.cell_range(&r);
        for (cid, _) in grid.cells() {
            if influence.contains(cid, QuerySlot(2)) {
                let cc = grid.cell_coords(cid);
                for ((c, lo), hi) in cc.iter().zip(&range.0).zip(&range.1).take(2) {
                    assert!(c >= lo && c <= hi);
                }
            }
        }
    }

    #[test]
    fn tie_tracking_collects_boundary_ties() {
        // Four points, three tie at the k-th score.
        let points = [[0.5, 0.5], [0.6, 0.4], [0.4, 0.6], [0.9, 0.9]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            2,
            None,
            true,
            None,
        );
        // Top-2: id3 (1.8), id0 (1.0, oldest of the ties).
        let ids: Vec<u64> = out.top.as_slice().iter().map(|e| e.id.0).collect();
        assert_eq!(ids, vec![3, 0]);
        let tie_ids: Vec<u64> = out.boundary_ties.iter().map(|e| e.id.0).collect();
        assert_eq!(tie_ids, vec![1, 2], "both 1.0-ties outside the result");
    }

    #[test]
    fn k_larger_than_population() {
        let points = [[0.2, 0.3], [0.8, 0.1]];
        let f = ScoreFn::linear(vec![1.0, 1.0]).unwrap();
        let (grid, mut scratch, mut influence) = setup(&points, 4);
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(0))),
            &f,
            5,
            None,
            false,
            None,
        );
        assert_eq!(out.top.len(), 2);
        assert!(!out.top.is_full());
        assert!(
            scratch.frontier.is_empty(),
            "deficient search floods the grid"
        );
    }

    /// Scratch reuse: back-to-back computations leave no stale state and
    /// keep their buffer capacity.
    #[test]
    fn scratch_is_reusable_across_calls() {
        let points = [[0.2, 0.9], [0.9, 0.2], [0.6, 0.6], [0.1, 0.1]];
        let (grid, mut scratch, mut influence) = setup(&points, 6);
        let f1 = ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let f2 = ScoreFn::linear(vec![-1.0, 1.0]).unwrap();
        let first = compute_topk(&grid, &mut scratch, None, &f1, 2, None, false, None);
        let heap_cap = scratch.heap.capacity();
        let again = compute_topk(&grid, &mut scratch, None, &f1, 2, None, false, None);
        assert_eq!(first.top.as_slice(), again.top.as_slice());
        assert!(scratch.heap.capacity() >= heap_cap, "capacity retained");
        // A different query direction still computes exactly.
        let out = compute_topk(
            &grid,
            &mut scratch,
            Some(InfluenceUpdate::fresh(&mut influence, QuerySlot(9))),
            &f2,
            1,
            None,
            false,
            None,
        );
        assert_eq!(out.top.as_slice(), &naive_topk(&points, &f2, 1, None)[..]);
        assert!(scratch.space_bytes() > std::mem::size_of::<ComputeScratch>());
    }
}
