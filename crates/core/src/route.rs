//! Per-query delta routing.
//!
//! [`MonitorServer::take_deltas`](crate::MonitorServer::take_deltas)
//! drains *all* result changes of a processing cycle; a serving layer with
//! many standing subscribers needs to know which of them cares about each
//! [`ResultDelta`]. [`DeltaRouter`] keeps that mapping: a query → subscriber
//! index maintained on subscribe/unsubscribe, consulted once per delta at
//! fan-out time. It is generic over the subscriber token so the in-process
//! serving layer (`tkm_service` session ids), a test harness, or an
//! embedding application can all reuse it.

use std::collections::BTreeMap;

use crate::result::ResultDelta;
use tkm_common::QueryId;

/// Routes drained [`ResultDelta`]s to the subscribers of each query.
///
/// `S` is the subscriber token (a session id, a channel handle index, …).
/// Tokens are compared with `==`; each `(query, token)` pair is stored at
/// most once, so double-subscribing is a no-op.
#[derive(Clone, Debug, Default)]
pub struct DeltaRouter<S> {
    subs: BTreeMap<QueryId, Vec<S>>,
}

impl<S: PartialEq + Clone> DeltaRouter<S> {
    /// Creates an empty router.
    pub fn new() -> DeltaRouter<S> {
        DeltaRouter {
            subs: BTreeMap::new(),
        }
    }

    /// Subscribes `who` to `query`'s deltas. Returns `false` if that
    /// subscription already existed.
    pub fn subscribe(&mut self, query: QueryId, who: S) -> bool {
        let list = self.subs.entry(query).or_default();
        if list.contains(&who) {
            return false;
        }
        list.push(who);
        true
    }

    /// Removes one subscription. Returns `false` if it did not exist.
    pub fn unsubscribe(&mut self, query: QueryId, who: &S) -> bool {
        let Some(list) = self.subs.get_mut(&query) else {
            return false;
        };
        let Some(pos) = list.iter().position(|s| s == who) else {
            return false;
        };
        list.swap_remove(pos);
        if list.is_empty() {
            self.subs.remove(&query);
        }
        true
    }

    /// Removes every subscription held by `who` (a disconnecting client),
    /// returning the queries it was subscribed to.
    pub fn drop_subscriber(&mut self, who: &S) -> Vec<QueryId> {
        let mut dropped = Vec::new();
        self.subs.retain(|query, list| {
            if let Some(pos) = list.iter().position(|s| s == who) {
                list.swap_remove(pos);
                dropped.push(*query);
            }
            !list.is_empty()
        });
        dropped
    }

    /// Removes every subscription to `query` (a terminated query),
    /// returning the subscribers that held one.
    pub fn drop_query(&mut self, query: QueryId) -> Vec<S> {
        self.subs.remove(&query).unwrap_or_default()
    }

    /// The subscribers of `query` (empty slice if none).
    pub fn subscribers(&self, query: QueryId) -> &[S] {
        self.subs.get(&query).map_or(&[], Vec::as_slice)
    }

    /// The queries `who` is subscribed to, ascending.
    pub fn subscriptions_of(&self, who: &S) -> Vec<QueryId> {
        self.subs
            .iter()
            .filter(|(_, list)| list.contains(who))
            .map(|(q, _)| *q)
            .collect()
    }

    /// Total number of `(query, subscriber)` pairs.
    pub fn len(&self) -> usize {
        self.subs.values().map(Vec::len).sum()
    }

    /// Whether no subscription exists.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Deep size estimate in bytes: the map nodes plus each query's
    /// subscriber list. `B`-tree node overhead is approximated with one
    /// pointer-sized word per entry.
    pub fn space_bytes(&self) -> usize {
        const NODE_OVERHEAD: usize = std::mem::size_of::<usize>();
        std::mem::size_of::<Self>()
            + self
                .subs
                .values()
                .map(|list| {
                    std::mem::size_of::<(QueryId, Vec<S>)>()
                        + NODE_OVERHEAD
                        + list.capacity() * std::mem::size_of::<S>()
                })
                .sum::<usize>()
    }

    /// Fans a batch of drained deltas out to their subscribers: yields one
    /// `(subscriber, delta)` pair per interested party, in delta order.
    pub fn route<'a>(
        &'a self,
        deltas: &'a [ResultDelta],
    ) -> impl Iterator<Item = (&'a S, &'a ResultDelta)> {
        deltas
            .iter()
            .flat_map(move |d| self.subscribers(d.query).iter().map(move |s| (s, d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Scored, TupleId};

    fn delta(q: u64) -> ResultDelta {
        ResultDelta {
            query: QueryId(q),
            added: vec![Scored::new(0.5, TupleId(1))],
            removed: Vec::new(),
        }
    }

    #[test]
    fn subscribe_route_unsubscribe() {
        let mut r: DeltaRouter<u32> = DeltaRouter::new();
        assert!(r.subscribe(QueryId(1), 7));
        assert!(!r.subscribe(QueryId(1), 7), "duplicate is a no-op");
        assert!(r.subscribe(QueryId(1), 8));
        assert!(r.subscribe(QueryId(2), 8));
        assert_eq!(r.len(), 3);

        let deltas = [delta(1), delta(2), delta(3)];
        let routed: Vec<(u32, u64)> = r.route(&deltas).map(|(s, d)| (*s, d.query.0)).collect();
        assert_eq!(routed, vec![(7, 1), (8, 1), (8, 2)], "q3 has no takers");

        assert!(r.unsubscribe(QueryId(1), &7));
        assert!(!r.unsubscribe(QueryId(1), &7));
        assert_eq!(r.subscribers(QueryId(1)), &[8]);
    }

    #[test]
    fn drop_subscriber_and_query() {
        let mut r: DeltaRouter<&'static str> = DeltaRouter::new();
        r.subscribe(QueryId(1), "a");
        r.subscribe(QueryId(2), "a");
        r.subscribe(QueryId(2), "b");
        assert_eq!(r.subscriptions_of(&"a"), vec![QueryId(1), QueryId(2)]);

        let gone = r.drop_subscriber(&"a");
        assert_eq!(gone, vec![QueryId(1), QueryId(2)]);
        assert_eq!(r.len(), 1);

        assert_eq!(r.drop_query(QueryId(2)), vec!["b"]);
        assert!(r.is_empty());
    }
}
