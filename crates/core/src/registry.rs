//! Dense per-engine query registry (slot map).
//!
//! The per-event inner loops of the maintenance engines resolve query
//! state once per influence-list entry. Keying that state by [`QueryId`]
//! forces an `O(log Q)` map probe per entry — pure bookkeeping overhead on
//! the hottest path in the system. `QueryRegistry` instead stores query
//! state in a dense `Vec` of slots with a free list: the influence lists
//! carry 4-byte [`QuerySlot`] indices, and the replay loop turns an entry
//! into `&mut` state with a single bounds-checked index. The
//! `QueryId → QuerySlot` hash map is consulted only at the edges —
//! register, remove, and result lookup — never per event.
//!
//! Slots are recycled: terminating a query pushes its slot onto the free
//! list and the next registration reuses it. Engines must therefore sweep
//! every influence-list entry of a slot *before* freeing it (the
//! `remove_query_walk` invariant), or a recycled slot would alias the dead
//! query's entries to the newcomer — the differential churn suite pins
//! this.

use tkm_common::{FxHashMap, QueryId, QuerySlot, Result, TkmError};

#[derive(Debug)]
struct Entry<T> {
    id: QueryId,
    state: T,
}

/// A slot map from dense [`QuerySlot`] indices to per-query state, with a
/// [`QueryId`] side index for the non-hot-path lookups.
#[derive(Debug)]
pub struct QueryRegistry<T> {
    slots: Vec<Option<Entry<T>>>,
    free: Vec<QuerySlot>,
    index: FxHashMap<QueryId, QuerySlot>,
}

impl<T> Default for QueryRegistry<T> {
    fn default() -> Self {
        QueryRegistry::new()
    }
}

impl<T> QueryRegistry<T> {
    /// Creates an empty registry.
    pub fn new() -> QueryRegistry<T> {
        QueryRegistry {
            slots: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Number of live queries.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no query is registered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `id` is registered.
    #[inline]
    pub fn contains(&self, id: QueryId) -> bool {
        self.index.contains_key(&id)
    }

    /// Registers `id` with its state, reusing a free slot if one exists.
    /// Fails with [`TkmError::DuplicateQuery`] when `id` is already live.
    pub fn insert(&mut self, id: QueryId, state: T) -> Result<QuerySlot> {
        if self.index.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot.index()].is_none(), "free slot occupied");
                self.slots[slot.index()] = Some(Entry { id, state });
                slot
            }
            None => {
                let slot = QuerySlot(u32::try_from(self.slots.len()).map_err(|_| {
                    TkmError::InvalidParameter("QueryRegistry: more than u32::MAX queries".into())
                })?);
                self.slots.push(Some(Entry { id, state }));
                slot
            }
        };
        self.index.insert(id, slot);
        Ok(slot)
    }

    /// Terminates `id`, freeing its slot for reuse, and returns the slot
    /// together with the removed state.
    pub fn remove(&mut self, id: QueryId) -> Result<(QuerySlot, T)> {
        let slot = self.index.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        let entry = self.slots[slot.index()]
            .take()
            .ok_or_else(|| TkmError::Internal(format!("query {id:?} maps to a freed slot")))?;
        self.free.push(slot);
        Ok((slot, entry.state))
    }

    /// The slot of a live query.
    #[inline]
    pub fn slot_of(&self, id: QueryId) -> Option<QuerySlot> {
        self.index.get(&id).copied()
    }

    /// State of a live query by id (edge path: one hash probe).
    pub fn get(&self, id: QueryId) -> Option<&T> {
        let slot = self.slot_of(id)?;
        self.slots[slot.index()].as_ref().map(|e| &e.state)
    }

    /// Mutable state of a live query by id (edge path).
    pub fn get_mut(&mut self, id: QueryId) -> Option<&mut T> {
        let slot = self.slot_of(id)?;
        self.slots[slot.index()].as_mut().map(|e| &mut e.state)
    }

    /// Hot path: resolves a slot (from an influence list) to the query's
    /// id and mutable state with a single `Vec` index.
    ///
    /// Panics if the slot is dead — influence lists are swept before a
    /// slot is freed, so a dead slot here is an engine invariant breach.
    #[inline]
    pub fn slot_mut(&mut self, slot: QuerySlot) -> (QueryId, &mut T) {
        let e = self.slots[slot.index()]
            .as_mut()
            // lint: allow(panic, reason=documented panic contract; a dead slot here is an engine invariant breach)
            .expect("influence lists are swept");
        (e.id, &mut e.state)
    }

    /// Hot path: resolves a slot to the query's id and state.
    #[inline]
    pub fn slot_ref(&self, slot: QuerySlot) -> (QueryId, &T) {
        let e = self.slots[slot.index()]
            .as_ref()
            // lint: allow(panic, reason=documented panic contract; a dead slot here is an engine invariant breach)
            .expect("influence lists are swept");
        (e.id, &e.state)
    }

    /// Iterates live `(QueryId, &state)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &T)> {
        self.slots.iter().flatten().map(|e| (e.id, &e.state))
    }

    /// Iterates live states mutably, in slot order.
    pub fn states_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().flatten().map(|e| &mut e.state)
    }

    /// Iterates live `(QuerySlot, QueryId, &mut state)` triples in slot
    /// order (the mass-expiry sweep visits every band without going
    /// through the influence lists).
    pub fn slots_mut(&mut self) -> impl Iterator<Item = (QuerySlot, QueryId, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            s.as_mut()
                .map(|e| (QuerySlot(i as u32), e.id, &mut e.state))
        })
    }

    /// Live query ids in slot order.
    pub fn ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.slots.iter().flatten().map(|e| e.id)
    }

    /// Deep size of the registry's own bookkeeping (slot wrappers, free
    /// list, id index) — per-query state (`T` itself, stored inline in the slot
    /// vec) is accounted by the caller via [`QueryRegistry::iter`], so the
    /// slot-vec term here counts only the per-slot wrapper bytes
    /// (`Option<Entry<T>>` minus `T`: the id, the discriminant and
    /// padding), not `T` again.
    pub fn space_bytes(&self) -> usize {
        /// Amortised per-entry overhead of the hash index (control bytes
        /// plus load-factor headroom), mirroring the constants used for
        /// other hash containers in the workspace.
        const MAP_ENTRY_OVERHEAD: usize = 8;
        let slot_wrapper =
            std::mem::size_of::<Option<Entry<T>>>().saturating_sub(std::mem::size_of::<T>());
        std::mem::size_of::<Self>()
            + self.slots.capacity() * slot_wrapper
            + self.free.capacity() * std::mem::size_of::<QuerySlot>()
            + self.index.capacity()
                * (std::mem::size_of::<(QueryId, QuerySlot)>() + MAP_ENTRY_OVERHEAD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_remove() {
        let mut r: QueryRegistry<&'static str> = QueryRegistry::new();
        assert!(r.is_empty());
        let s0 = r.insert(QueryId(10), "a").unwrap();
        let s1 = r.insert(QueryId(20), "b").unwrap();
        assert_eq!((s0, s1), (QuerySlot(0), QuerySlot(1)));
        assert_eq!(r.len(), 2);
        assert!(r.contains(QueryId(10)));
        assert_eq!(r.get(QueryId(20)), Some(&"b"));
        assert_eq!(r.slot_ref(s0), (QueryId(10), &"a"));
        assert_eq!(r.slot_mut(s1).0, QueryId(20));
        assert!(matches!(
            r.insert(QueryId(10), "dup"),
            Err(TkmError::DuplicateQuery(_))
        ));
        let (slot, state) = r.remove(QueryId(10)).unwrap();
        assert_eq!((slot, state), (QuerySlot(0), "a"));
        assert!(matches!(
            r.remove(QueryId(10)),
            Err(TkmError::UnknownQuery(_))
        ));
        assert_eq!(r.get(QueryId(10)), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn slots_are_recycled_lifo() {
        let mut r: QueryRegistry<u64> = QueryRegistry::new();
        for i in 0..4u64 {
            r.insert(QueryId(i), i).unwrap();
        }
        r.remove(QueryId(1)).unwrap();
        r.remove(QueryId(3)).unwrap();
        // LIFO reuse: last freed slot first.
        assert_eq!(r.insert(QueryId(9), 9).unwrap(), QuerySlot(3));
        assert_eq!(r.insert(QueryId(8), 8).unwrap(), QuerySlot(1));
        // A recycled slot resolves to the *new* query.
        assert_eq!(r.slot_ref(QuerySlot(1)), (QueryId(8), &8));
        let ids: Vec<u64> = r.ids().map(|q| q.0).collect();
        assert_eq!(ids, vec![0, 8, 2, 9], "slot order");
    }

    #[test]
    #[should_panic(expected = "influence lists are swept")]
    fn dead_slot_access_panics() {
        let mut r: QueryRegistry<u8> = QueryRegistry::new();
        let slot = r.insert(QueryId(0), 1).unwrap();
        r.remove(QueryId(0)).unwrap();
        let _ = r.slot_ref(slot);
    }

    #[test]
    fn iteration_skips_dead_slots() {
        let mut r: QueryRegistry<u8> = QueryRegistry::new();
        for i in 0..5u64 {
            r.insert(QueryId(i), i as u8).unwrap();
        }
        r.remove(QueryId(2)).unwrap();
        let got: Vec<(u64, u8)> = r.iter().map(|(id, s)| (id.0, *s)).collect();
        assert_eq!(got, vec![(0, 0), (1, 1), (3, 3), (4, 4)]);
        assert!(r.space_bytes() > std::mem::size_of::<QueryRegistry<u8>>());
    }
}
