//! High-level facade: a monitoring server that owns one engine and hands
//! out query ids.
//!
//! This is the API a downstream application is expected to use; the raw
//! engines remain available for benchmarking and fine-grained control.

use std::collections::BTreeMap;

use crate::engine::{build_engine, ContinuousTopK, EngineKind};
use crate::parallel::{SharedSmaMonitor, SharedTmaMonitor};
use crate::query::Query;
use crate::result::ResultDelta;
use crate::tma::GridSpec;
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_tsl::KmaxPolicy;
use tkm_window::WindowSpec;

/// Configuration of a [`MonitorServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Dimensionality of the tuple stream.
    pub dims: usize,
    /// Sliding-window semantics.
    pub window: WindowSpec,
    /// Grid sizing (ignored by TSL/oracle).
    pub grid: GridSpec,
    /// Engine selection; SMA is the paper's recommendation.
    pub engine: EngineKind,
    /// `kmax` policy (TSL only).
    pub kmax: KmaxPolicy,
    /// Query-maintenance shards. `1` runs the plain single-threaded
    /// engine; `> 1` routes TMA/SMA through a
    /// [`crate::parallel::SharedParallelMonitor`]: one shared window +
    /// grid, queries partitioned across `shards` threads.
    pub shards: usize,
    /// Whether per-tick result-change reporting starts enabled (see
    /// [`MonitorServer::enable_delta_tracking`]). Serving layers that fan
    /// deltas out to subscribers turn this on so no tick can slip through
    /// before tracking starts.
    pub delta_tracking: bool,
}

impl ServerConfig {
    /// A sensible default: SMA over a count-based window of `n` tuples with
    /// the paper's 12⁴-cell grid budget, unsharded.
    pub fn sma(dims: usize, n: usize) -> ServerConfig {
        ServerConfig {
            dims,
            window: WindowSpec::Count(n),
            grid: GridSpec::default(),
            engine: EngineKind::Sma,
            kmax: KmaxPolicy::Tuned,
            shards: 1,
            delta_tracking: false,
        }
    }

    /// Selects a different engine.
    pub fn with_engine(mut self, engine: EngineKind) -> ServerConfig {
        self.engine = engine;
        self
    }

    /// Selects a different window.
    pub fn with_window(mut self, window: WindowSpec) -> ServerConfig {
        self.window = window;
        self
    }

    /// Selects a different grid sizing.
    pub fn with_grid(mut self, grid: GridSpec) -> ServerConfig {
        self.grid = grid;
        self
    }

    /// Selects the number of query-maintenance shards (TMA/SMA only).
    pub fn with_shards(mut self, shards: usize) -> ServerConfig {
        self.shards = shards;
        self
    }

    /// Turns per-tick result-change reporting on from the first tick.
    pub fn with_delta_tracking(mut self, on: bool) -> ServerConfig {
        self.delta_tracking = on;
        self
    }
}

/// A continuous top-k monitoring server.
pub struct MonitorServer {
    engine: Box<dyn ContinuousTopK>,
    config: ServerConfig,
    next_query: u64,
    now: Timestamp,
    /// Previous results per query while delta tracking is on.
    delta_prev: Option<BTreeMap<QueryId, Vec<Scored>>>,
    deltas: Vec<ResultDelta>,
}

impl MonitorServer {
    /// Builds a server from its configuration.
    pub fn new(cfg: ServerConfig) -> Result<MonitorServer> {
        let engine: Box<dyn ContinuousTopK> = match cfg.shards {
            0 => {
                return Err(TkmError::InvalidParameter(
                    "ServerConfig: at least one shard required".into(),
                ))
            }
            1 => build_engine(cfg.engine, cfg.dims, cfg.window, cfg.grid, cfg.kmax)?,
            s => match cfg.engine {
                EngineKind::Tma => {
                    Box::new(SharedTmaMonitor::new(cfg.dims, cfg.window, cfg.grid, s)?)
                }
                EngineKind::Sma => {
                    Box::new(SharedSmaMonitor::new(cfg.dims, cfg.window, cfg.grid, s)?)
                }
                EngineKind::Tsl | EngineKind::Oracle => {
                    return Err(TkmError::Unsupported(
                        "query sharding requires a grid-based engine (TMA or SMA)".into(),
                    ))
                }
            },
        };
        let mut server = MonitorServer {
            engine,
            config: cfg,
            next_query: 0,
            now: Timestamp(0),
            delta_prev: None,
            deltas: Vec::new(),
        };
        if cfg.delta_tracking {
            server.enable_delta_tracking()?;
        }
        Ok(server)
    }

    /// The engine in use ("TMA", "SMA", "TSL", "ORACLE").
    pub fn engine_name(&self) -> &'static str {
        self.engine.name()
    }

    /// The configuration the server was built from.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Dimensionality of the monitored stream.
    pub fn dims(&self) -> usize {
        self.engine.dims()
    }

    /// Registers a query, returning its server-assigned id.
    pub fn register(&mut self, query: Query) -> Result<QueryId> {
        let id = QueryId(self.next_query);
        self.engine.register_query(id, query)?;
        self.next_query += 1;
        if let Some(prev) = &mut self.delta_prev {
            prev.insert(id, self.engine.result(id)?);
        }
        Ok(id)
    }

    /// Terminates a query.
    pub fn unregister(&mut self, id: QueryId) -> Result<()> {
        self.engine.remove_query(id)?;
        if let Some(prev) = &mut self.delta_prev {
            prev.remove(&id);
        }
        Ok(())
    }

    /// Turns on per-tick result-change reporting ("report changes to the
    /// client", Figures 9/11): after every tick, [`MonitorServer::take_deltas`]
    /// returns which tuples entered/left each query's top-k. The current
    /// results become the baseline.
    pub fn enable_delta_tracking(&mut self) -> Result<()> {
        let mut prev = BTreeMap::new();
        for id in (0..self.next_query).map(QueryId) {
            if let Ok(res) = self.engine.result(id) {
                prev.insert(id, res);
            }
        }
        self.delta_prev = Some(prev);
        Ok(())
    }

    /// Drains the result changes accumulated since the last call (empty
    /// unless [`MonitorServer::enable_delta_tracking`] was called).
    pub fn take_deltas(&mut self) -> Vec<ResultDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// One-shot top-k against the current window contents — no continuous
    /// state is created.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        self.engine.snapshot(query)
    }

    fn record_deltas(&mut self) -> Result<()> {
        let Some(prev) = &mut self.delta_prev else {
            return Ok(());
        };
        for (id, old) in prev.iter_mut() {
            let new = self.engine.result(*id)?;
            let delta = ResultDelta::diff(*id, old, &new);
            if !delta.is_empty() {
                self.deltas.push(delta);
            }
            *old = new;
        }
        Ok(())
    }

    /// Feeds one processing cycle of arrivals (flat coordinate buffer, one
    /// tuple per `dims` chunk) and advances time by one tick.
    pub fn tick(&mut self, arrivals: &[f64]) -> Result<()> {
        self.engine.tick(self.now, arrivals)?;
        self.now = self.now.advance(1);
        self.record_deltas()
    }

    /// Like [`MonitorServer::tick`] with an explicit timestamp (must be
    /// non-decreasing across cycles; FIFO expiry depends on it, so a
    /// regressing timestamp is rejected rather than fed to the engine).
    pub fn tick_at(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        if now.advance(1) < self.now {
            return Err(TkmError::InvalidParameter(format!(
                "tick_at: timestamp {now} precedes the last processed cycle (now {})",
                self.now
            )));
        }
        self.engine.tick(now, arrivals)?;
        self.now = now.advance(1);
        self.record_deltas()
    }

    /// Current logical time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.engine.result(id)
    }

    /// Deep size estimate of the engine state in bytes.
    pub fn space_bytes(&self) -> usize {
        self.engine.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::ScoreFn;

    #[test]
    fn end_to_end_lifecycle() {
        let mut server = MonitorServer::new(ServerConfig::sma(2, 5)).unwrap();
        assert_eq!(server.engine_name(), "SMA");
        let q = server
            .register(Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap())
            .unwrap();
        server.tick(&[0.9, 0.9, 0.1, 0.1, 0.5, 0.5]).unwrap();
        let res = server.result(q).unwrap();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].score.get(), 1.8);
        server.unregister(q).unwrap();
        assert!(server.result(q).is_err());
    }

    #[test]
    fn sharded_server_matches_unsharded() {
        let mut sharded = MonitorServer::new(ServerConfig::sma(2, 30).with_shards(3)).unwrap();
        let mut single = MonitorServer::new(ServerConfig::sma(2, 30)).unwrap();
        assert_eq!(sharded.engine_name(), "SMA-SHARED");
        let mk = |w: f64| Query::top_k(ScoreFn::linear(vec![w, 1.0]).unwrap(), 3).unwrap();
        let mut ids = Vec::new();
        for i in 0..5 {
            let q = mk(0.2 * i as f64);
            let a = sharded.register(q.clone()).unwrap();
            let b = single.register(q).unwrap();
            assert_eq!(a, b);
            ids.push(a);
        }
        let mut state = 3u64;
        for _ in 0..20 {
            let mut batch = Vec::new();
            for _ in 0..8 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                batch.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
            }
            sharded.tick(&batch).unwrap();
            single.tick(&batch).unwrap();
            for id in &ids {
                assert_eq!(sharded.result(*id).unwrap(), single.result(*id).unwrap());
            }
        }
    }

    #[test]
    fn sharding_validation() {
        assert!(MonitorServer::new(ServerConfig::sma(2, 10).with_shards(0)).is_err());
        assert!(MonitorServer::new(
            ServerConfig::sma(2, 10)
                .with_engine(EngineKind::Tsl)
                .with_shards(2)
        )
        .is_err());
        assert!(MonitorServer::new(
            ServerConfig::sma(2, 10)
                .with_engine(EngineKind::Tma)
                .with_shards(2)
        )
        .is_ok());
    }

    #[test]
    fn tick_at_rejects_regressing_timestamps() {
        let mut server = MonitorServer::new(ServerConfig::sma(1, 4)).unwrap();
        server.tick_at(Timestamp(5), &[0.5]).unwrap();
        assert_eq!(server.now(), Timestamp(6));
        // Equal-to-last is allowed (several cycles in one instant)…
        server.tick_at(Timestamp(5), &[0.4]).unwrap();
        // …but going backwards is not.
        assert!(server.tick_at(Timestamp(2), &[0.3]).is_err());
        assert_eq!(server.now(), Timestamp(6), "rejected cycle left no trace");
    }

    #[test]
    fn delta_tracking_from_construction() {
        let cfg = ServerConfig::sma(1, 4).with_delta_tracking(true);
        let mut server = MonitorServer::new(cfg).unwrap();
        assert!(server.config().delta_tracking);
        let q = server
            .register(Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 2).unwrap())
            .unwrap();
        // The very first tick is already reported — no enable_delta_tracking
        // call races against it.
        server.tick(&[0.4, 0.9]).unwrap();
        let deltas = server.take_deltas();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].query, q);
        assert_eq!(deltas[0].added.len(), 2);
        assert!(server.take_deltas().is_empty(), "drained");
    }

    #[test]
    fn ids_are_unique() {
        let mut server =
            MonitorServer::new(ServerConfig::sma(1, 5).with_engine(EngineKind::Tma)).unwrap();
        let f = || ScoreFn::linear(vec![1.0]).unwrap();
        let a = server.register(Query::top_k(f(), 1).unwrap()).unwrap();
        let b = server.register(Query::top_k(f(), 1).unwrap()).unwrap();
        assert_ne!(a, b);
    }
}
