//! Query-sharded parallel monitoring.
//!
//! The paper's server is single-threaded and CPU-bound, and its per-cycle
//! cost is essentially linear in the number of queries `Q` (Figure 18).
//! That makes *query sharding* the natural scale-out: run `S` independent
//! engine replicas, assign each query to one replica, and drive all
//! replicas with the same arrival batches from one thread pool. Each shard
//! maintains its own window and grid, so memory grows `S`-fold while the
//! per-core query load drops `S`-fold — the right trade for the paper's
//! setting, where tuple storage is megabytes but CPU is the bottleneck.
//!
//! Shards are plain engines ([`crate::TmaMonitor`], [`crate::SmaMonitor`],
//! …), so every correctness property of the single-threaded engines
//! carries over verbatim; the integration tests assert that a sharded
//! monitor reports exactly the results of an unsharded one.

use std::collections::BTreeMap;

use crate::engine::ContinuousTopK;
use crate::query::Query;
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};

/// A pool of engine replicas with queries sharded across them.
pub struct ParallelMonitor<E> {
    shards: Vec<E>,
    /// Which shard serves each query.
    assignment: BTreeMap<QueryId, usize>,
    /// Queries per shard (for balanced placement).
    load: Vec<usize>,
}

impl<E: ContinuousTopK + Send> ParallelMonitor<E> {
    /// Builds a pool from pre-constructed engine replicas (all must share
    /// the same dimensionality and window configuration).
    pub fn new(shards: Vec<E>) -> Result<ParallelMonitor<E>> {
        if shards.is_empty() {
            return Err(TkmError::InvalidParameter(
                "ParallelMonitor: at least one shard required".into(),
            ));
        }
        let dims = shards[0].dims();
        if shards.iter().any(|s| s.dims() != dims) {
            return Err(TkmError::InvalidParameter(
                "ParallelMonitor: shards disagree on dimensionality".into(),
            ));
        }
        let load = vec![0; shards.len()];
        Ok(ParallelMonitor {
            shards,
            assignment: BTreeMap::new(),
            load,
        })
    }

    /// Builds a pool of `n` replicas from a constructor closure.
    pub fn with_replicas(
        n: usize,
        mut build: impl FnMut() -> Result<E>,
    ) -> Result<ParallelMonitor<E>> {
        let shards: Result<Vec<E>> = (0..n).map(|_| build()).collect();
        ParallelMonitor::new(shards?)
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the monitored stream.
    #[inline]
    pub fn dims(&self) -> usize {
        self.shards[0].dims()
    }

    /// Registers a query on the least-loaded shard.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if self.assignment.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let shard = self
            .load
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .map(|(i, _)| i)
            .expect("at least one shard");
        self.shards[shard].register_query(id, query)?;
        self.assignment.insert(id, shard);
        self.load[shard] += 1;
        Ok(())
    }

    /// Terminates a query.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let shard = self
            .assignment
            .remove(&id)
            .ok_or(TkmError::UnknownQuery(id))?;
        self.load[shard] -= 1;
        self.shards[shard].remove_query(id)
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        let shard = *self.assignment.get(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.shards[shard].result(id)
    }

    /// Executes one processing cycle on every shard in parallel. All
    /// shards consume the same arrival batch, so their windows stay
    /// identical; only their query sets differ.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.tick(now, arrivals)))
                .collect();
            outcomes = handles
                .into_iter()
                .map(|h| h.join().expect("shard thread must not panic"))
                .collect();
        });
        outcomes.into_iter().collect()
    }

    /// Deep size estimate across all shards (memory is replicated; this is
    /// the price of sharding).
    pub fn space_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.space_bytes()).sum()
    }

    /// Queries per shard, for observability.
    pub fn shard_loads(&self) -> &[usize] {
        &self.load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sma::SmaMonitor;
    use crate::tma::GridSpec;
    use tkm_common::ScoreFn;
    use tkm_window::WindowSpec;

    fn build_sma() -> Result<SmaMonitor> {
        SmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(5))
    }

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    #[test]
    fn construction_validation() {
        assert!(ParallelMonitor::<SmaMonitor>::new(vec![]).is_err());
        let mixed = vec![
            SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap(),
            SmaMonitor::new(3, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap(),
        ];
        assert!(ParallelMonitor::new(mixed).is_err());
    }

    #[test]
    fn matches_unsharded_engine() {
        let mut sharded = ParallelMonitor::with_replicas(3, build_sma).unwrap();
        let mut single = build_sma().unwrap();
        let queries: Vec<Query> = (0..7)
            .map(|i| {
                Query::top_k(
                    ScoreFn::linear(vec![1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2]).unwrap(),
                    3,
                )
                .unwrap()
            })
            .collect();
        for (i, q) in queries.iter().enumerate() {
            sharded
                .register_query(QueryId(i as u64), q.clone())
                .unwrap();
            single.register_query(QueryId(i as u64), q.clone()).unwrap();
        }
        // Balanced placement: 7 queries over 3 shards → loads 3/2/2.
        let mut loads = sharded.shard_loads().to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![2, 2, 3]);

        for tick in 0..30u64 {
            let batch = lcg_stream(tick + 1, 8, 2);
            sharded.tick(Timestamp(tick), &batch).unwrap();
            single.tick(Timestamp(tick), &batch).unwrap();
            for i in 0..queries.len() {
                let id = QueryId(i as u64);
                assert_eq!(
                    sharded.result(id).unwrap(),
                    single.result(id).unwrap(),
                    "query {id} diverged at tick {tick}"
                );
            }
        }
    }

    #[test]
    fn query_churn_rebalances() {
        let mut m = ParallelMonitor::with_replicas(2, build_sma).unwrap();
        let q = |w: f64| Query::top_k(ScoreFn::linear(vec![w, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q(0.5)).unwrap();
        m.register_query(QueryId(1), q(1.5)).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q(1.0)),
            Err(TkmError::DuplicateQuery(_))
        ));
        m.remove_query(QueryId(0)).unwrap();
        assert!(m.remove_query(QueryId(0)).is_err());
        assert!(m.result(QueryId(0)).is_err());
        // The freed slot is reused by the next registration.
        m.register_query(QueryId(2), q(0.7)).unwrap();
        let mut loads = m.shard_loads().to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![1, 1]);
        m.tick(Timestamp(0), &[0.4, 0.6]).unwrap();
        assert_eq!(m.result(QueryId(2)).unwrap().len(), 1);
    }
}
