//! Query-sharded parallel monitoring.
//!
//! The paper's server is single-threaded and CPU-bound, and its per-cycle
//! cost is essentially linear in the number of queries `Q` (Figure 18).
//! That makes *query sharding* the natural scale-out. Two designs live
//! here:
//!
//! * [`SharedParallelMonitor`] — the intended architecture: **one** shared
//!   [`IngestState`] (window + grid) is populated per tick, and `S`
//!   [`QueryMaintenance`] shards replay the recorded arrival/expiry events
//!   against their own queries from scoped threads, reading the shared
//!   state through immutable views. Tuple storage is O(1) in `S`; only the
//!   per-query state (influence lists, top-lists/skybands, scratch) is
//!   per-shard.
//! * [`ParallelMonitor`] — the naive baseline kept for comparison: `S`
//!   full engine replicas, each re-ingesting every arrival into its own
//!   window and grid, so memory and ingest work grow `S`-fold. The
//!   `scaleout` experiment puts the two side by side.
//!
//! Both report exactly the results of an unsharded engine; the
//! differential test suite (`tests/shared_parallel.rs`) pins that under
//! query churn, time windows and score ties.

use std::collections::BTreeMap;

use crate::engine::ContinuousTopK;
use crate::ingest::IngestState;
use crate::maintenance::{QueryMaintenance, SmaMaintenance, TmaMaintenance};
use crate::query::Query;
use crate::stats::EngineStats;
use crate::tma::GridSpec;
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_window::WindowSpec;

/// Estimated per-entry overhead of the `assignment`/`load` bookkeeping
/// (BTreeMap node amortisation), mirroring the per-entry constants the
/// other `space_bytes` impls use for hash containers.
const MAP_ENTRY_OVERHEAD: usize = 16;

fn bookkeeping_bytes(assignment: &BTreeMap<QueryId, usize>, load: &[usize]) -> usize {
    assignment.len()
        * (std::mem::size_of::<QueryId>() + std::mem::size_of::<usize>() + MAP_ENTRY_OVERHEAD)
        + std::mem::size_of_val(load)
}

/// Converts a scoped-thread join outcome into an engine result, surfacing
/// a shard panic as [`TkmError::Internal`] instead of aborting the server.
fn join_outcome(joined: std::thread::Result<Result<()>>) -> Result<()> {
    match joined {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "shard thread panicked".into());
            Err(TkmError::Internal(format!("shard panicked: {msg}")))
        }
    }
}

/// Picks the least-loaded shard (shard 0 when the pool is empty, which
/// the constructors reject).
fn least_loaded(load: &[usize]) -> usize {
    load.iter()
        .enumerate()
        .min_by_key(|(_, l)| **l)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// A pool of engine replicas with queries sharded across them (replicated
/// windows and grids — the memory-hungry baseline).
pub struct ParallelMonitor<E> {
    shards: Vec<E>,
    /// Which shard serves each query.
    assignment: BTreeMap<QueryId, usize>,
    /// Queries per shard (for balanced placement).
    load: Vec<usize>,
}

impl<E: ContinuousTopK + Send> ParallelMonitor<E> {
    /// Builds a pool from pre-constructed engine replicas (all must share
    /// the same dimensionality and window configuration).
    pub fn new(shards: Vec<E>) -> Result<ParallelMonitor<E>> {
        if shards.is_empty() {
            return Err(TkmError::InvalidParameter(
                "ParallelMonitor: at least one shard required".into(),
            ));
        }
        let dims = shards[0].dims();
        if shards.iter().any(|s| s.dims() != dims) {
            return Err(TkmError::InvalidParameter(
                "ParallelMonitor: shards disagree on dimensionality".into(),
            ));
        }
        let load = vec![0; shards.len()];
        Ok(ParallelMonitor {
            shards,
            assignment: BTreeMap::new(),
            load,
        })
    }

    /// Builds a pool of `n` replicas from a constructor closure.
    pub fn with_replicas(
        n: usize,
        mut build: impl FnMut() -> Result<E>,
    ) -> Result<ParallelMonitor<E>> {
        let shards: Result<Vec<E>> = (0..n).map(|_| build()).collect();
        ParallelMonitor::new(shards?)
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the monitored stream.
    #[inline]
    pub fn dims(&self) -> usize {
        self.shards[0].dims()
    }

    /// Registers a query on the least-loaded shard.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if self.assignment.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let shard = least_loaded(&self.load);
        self.shards[shard].register_query(id, query)?;
        self.assignment.insert(id, shard);
        self.load[shard] += 1;
        Ok(())
    }

    /// Terminates a query.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let shard = self
            .assignment
            .remove(&id)
            .ok_or(TkmError::UnknownQuery(id))?;
        self.load[shard] -= 1;
        self.shards[shard].remove_query(id)
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        let shard = *self.assignment.get(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.shards[shard].result(id)
    }

    /// Executes one processing cycle on every shard in parallel. All
    /// shards consume the same arrival batch, so their windows stay
    /// identical; only their query sets differ.
    ///
    /// A panicking shard is reported as [`TkmError::Internal`] (after every
    /// shard has been joined) rather than poisoning the whole process.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let mut outcomes: Vec<Result<()>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.tick(now, arrivals)))
                .collect();
            outcomes = handles
                .into_iter()
                .map(|h| join_outcome(h.join()))
                .collect();
        });
        outcomes.into_iter().collect()
    }

    /// Deep size estimate: all shards (memory is replicated; this is the
    /// price of this design) plus the assignment bookkeeping.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.shards.iter().map(|s| s.space_bytes()).sum::<usize>()
            + bookkeeping_bytes(&self.assignment, &self.load)
    }

    /// Queries per shard, for observability.
    pub fn shard_loads(&self) -> &[usize] {
        &self.load
    }
}

/// Query-sharded monitor over **one** shared window and grid.
///
/// Per tick, [`IngestState::ingest`] applies the arrival and expiry sets
/// once; the maintenance shards then replay the recorded events in
/// parallel through immutable `&IngestState` views from within
/// [`std::thread::scope`]. Per-query state (influence lists, result
/// book-keeping, traversal scratch) is partitioned by query across shards.
pub struct SharedParallelMonitor<M> {
    shared: IngestState,
    shards: Vec<M>,
    assignment: BTreeMap<QueryId, usize>,
    load: Vec<usize>,
}

/// Shared-ingest monitor with TMA maintenance shards.
pub type SharedTmaMonitor = SharedParallelMonitor<TmaMaintenance>;
/// Shared-ingest monitor with SMA maintenance shards.
pub type SharedSmaMonitor = SharedParallelMonitor<SmaMaintenance>;

impl<M: QueryMaintenance> SharedParallelMonitor<M> {
    /// Creates a monitor with `shards` maintenance shards over one shared
    /// window and grid.
    pub fn new(
        dims: usize,
        window: WindowSpec,
        grid: GridSpec,
        shards: usize,
    ) -> Result<SharedParallelMonitor<M>> {
        if shards == 0 {
            return Err(TkmError::InvalidParameter(
                "SharedParallelMonitor: at least one shard required".into(),
            ));
        }
        let shared = IngestState::new(dims, window, grid)?;
        let shards: Vec<M> = (0..shards).map(|_| M::new_for(&shared)).collect();
        let load = vec![0; shards.len()];
        Ok(SharedParallelMonitor {
            shared,
            shards,
            assignment: BTreeMap::new(),
            load,
        })
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Dimensionality of the monitored stream.
    #[inline]
    pub fn dims(&self) -> usize {
        self.shared.dims()
    }

    /// The shared ingest state (read access, for diagnostics).
    #[inline]
    pub fn ingest_state(&self) -> &IngestState {
        &self.shared
    }

    /// Registers a query on the least-loaded shard.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if self.assignment.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let shard = least_loaded(&self.load);
        self.shards[shard].register_query(&self.shared, id, query)?;
        self.assignment.insert(id, shard);
        self.load[shard] += 1;
        Ok(())
    }

    /// Terminates a query.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let shard = self
            .assignment
            .remove(&id)
            .ok_or(TkmError::UnknownQuery(id))?;
        self.load[shard] -= 1;
        self.shards[shard].remove_query(&self.shared, id)
    }

    /// The current top-k result of a query, best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        let shard = *self.assignment.get(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.shards[shard].result(id)
    }

    /// Executes one processing cycle: the arrival/expiry sets are applied
    /// to the shared window and grid exactly once, then every shard
    /// replays the recorded events against its own queries in parallel.
    ///
    /// A panicking shard is reported as [`TkmError::Internal`] (after every
    /// shard has been joined) rather than poisoning the whole process.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        self.shared.ingest(now, arrivals)?;
        let shared = &self.shared;
        if self.shards.len() == 1 {
            // No point paying thread spawn for a single shard.
            return self.shards[0].apply_events(shared);
        }
        let mut outcomes: Vec<Result<()>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .map(|shard| scope.spawn(move || shard.apply_events(shared)))
                .collect();
            outcomes = handles
                .into_iter()
                .map(|h| join_outcome(h.join()))
                .collect();
        });
        outcomes.into_iter().collect()
    }

    /// One-shot (snapshot) top-k over the shared window contents.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        self.shards[0].snapshot(&self.shared, query)
    }

    /// Enables or disables batched shared recomputation on every shard
    /// (default: on).
    pub fn set_batched_recompute(&mut self, on: bool) {
        for s in &mut self.shards {
            s.set_batched_recompute(on);
        }
    }

    /// Cumulative counters: the shared ingest stage plus every shard's
    /// maintenance counters.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default().with_ingest(self.shared.stats());
        for s in &self.shards {
            total.absorb(s.stats());
        }
        total
    }

    /// Deep size estimate: the shared tuple storage **once**, the
    /// per-shard query state, and the assignment bookkeeping.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.shared.space_bytes()
            + self.shards.iter().map(|s| s.space_bytes()).sum::<usize>()
            + bookkeeping_bytes(&self.assignment, &self.load)
    }

    /// Queries per shard, for observability.
    pub fn shard_loads(&self) -> &[usize] {
        &self.load
    }
}

impl<M: QueryMaintenance> ContinuousTopK for SharedParallelMonitor<M> {
    fn name(&self) -> &'static str {
        M::SHARED_LABEL
    }
    fn dims(&self) -> usize {
        SharedParallelMonitor::dims(self)
    }
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        SharedParallelMonitor::register_query(self, id, query)
    }
    fn remove_query(&mut self, id: QueryId) -> Result<()> {
        SharedParallelMonitor::remove_query(self, id)
    }
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        SharedParallelMonitor::tick(self, now, arrivals)
    }
    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        SharedParallelMonitor::result(self, id)
    }
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        SharedParallelMonitor::snapshot(self, query)
    }
    fn space_bytes(&self) -> usize {
        SharedParallelMonitor::space_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sma::SmaMonitor;
    use tkm_common::ScoreFn;

    fn build_sma() -> Result<SmaMonitor> {
        SmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(5))
    }

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    #[test]
    fn construction_validation() {
        assert!(ParallelMonitor::<SmaMonitor>::new(vec![]).is_err());
        let mixed = vec![
            SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap(),
            SmaMonitor::new(3, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap(),
        ];
        assert!(ParallelMonitor::new(mixed).is_err());
        assert!(
            SharedSmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4), 0).is_err(),
            "zero shards"
        );
    }

    #[test]
    fn replicated_matches_unsharded_engine() {
        let mut sharded = ParallelMonitor::with_replicas(3, build_sma).unwrap();
        let mut single = build_sma().unwrap();
        let queries: Vec<Query> = (0..7)
            .map(|i| {
                Query::top_k(
                    ScoreFn::linear(vec![1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2]).unwrap(),
                    3,
                )
                .unwrap()
            })
            .collect();
        for (i, q) in queries.iter().enumerate() {
            sharded
                .register_query(QueryId(i as u64), q.clone())
                .unwrap();
            single.register_query(QueryId(i as u64), q.clone()).unwrap();
        }
        // Balanced placement: 7 queries over 3 shards → loads 3/2/2.
        let mut loads = sharded.shard_loads().to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![2, 2, 3]);

        for tick in 0..30u64 {
            let batch = lcg_stream(tick + 1, 8, 2);
            sharded.tick(Timestamp(tick), &batch).unwrap();
            single.tick(Timestamp(tick), &batch).unwrap();
            for i in 0..queries.len() {
                let id = QueryId(i as u64);
                assert_eq!(
                    sharded.result(id).unwrap(),
                    single.result(id).unwrap(),
                    "query {id} diverged at tick {tick}"
                );
            }
        }
    }

    #[test]
    fn shared_matches_unsharded_engine() {
        let mut sharded =
            SharedSmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(5), 3).unwrap();
        let mut single = build_sma().unwrap();
        assert_eq!(ContinuousTopK::name(&sharded), "SMA-SHARED");
        let queries: Vec<Query> = (0..7)
            .map(|i| {
                Query::top_k(
                    ScoreFn::linear(vec![1.0 + i as f64 * 0.3, 2.0 - i as f64 * 0.2]).unwrap(),
                    3,
                )
                .unwrap()
            })
            .collect();
        for (i, q) in queries.iter().enumerate() {
            sharded
                .register_query(QueryId(i as u64), q.clone())
                .unwrap();
            single.register_query(QueryId(i as u64), q.clone()).unwrap();
        }
        let mut loads = sharded.shard_loads().to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![2, 2, 3]);

        for tick in 0..30u64 {
            let batch = lcg_stream(tick + 1, 8, 2);
            sharded.tick(Timestamp(tick), &batch).unwrap();
            single.tick(Timestamp(tick), &batch).unwrap();
            for i in 0..queries.len() {
                let id = QueryId(i as u64);
                assert_eq!(
                    sharded.result(id).unwrap(),
                    single.result(id).unwrap(),
                    "query {id} diverged at tick {tick}"
                );
            }
        }
        // Stream-side counters are counted once, not per shard.
        let st = sharded.stats();
        assert_eq!(st.ticks, 30);
        assert_eq!(st.arrivals, 240);
    }

    #[test]
    fn shared_tma_matches_unsharded_engine() {
        let mut sharded =
            SharedTmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6), 2).unwrap();
        let mut single =
            crate::tma::TmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let q = |w: f64| Query::top_k(ScoreFn::linear(vec![w, 1.0]).unwrap(), 4).unwrap();
        for i in 0..4u64 {
            sharded
                .register_query(QueryId(i), q(i as f64 * 0.5))
                .unwrap();
            single
                .register_query(QueryId(i), q(i as f64 * 0.5))
                .unwrap();
        }
        for tick in 0..25u64 {
            let batch = lcg_stream(tick + 5, 6, 2);
            sharded.tick(Timestamp(tick), &batch).unwrap();
            single.tick(Timestamp(tick), &batch).unwrap();
            for i in 0..4u64 {
                assert_eq!(
                    sharded.result(QueryId(i)).unwrap(),
                    single.result(QueryId(i)).unwrap().to_vec(),
                    "query {i} diverged at tick {tick}"
                );
            }
        }
    }

    #[test]
    fn query_churn_rebalances() {
        let mut m =
            SharedSmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(5), 2).unwrap();
        let q = |w: f64| Query::top_k(ScoreFn::linear(vec![w, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q(0.5)).unwrap();
        m.register_query(QueryId(1), q(1.5)).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q(1.0)),
            Err(TkmError::DuplicateQuery(_))
        ));
        m.remove_query(QueryId(0)).unwrap();
        assert!(m.remove_query(QueryId(0)).is_err());
        assert!(m.result(QueryId(0)).is_err());
        // The freed slot is reused by the next registration.
        m.register_query(QueryId(2), q(0.7)).unwrap();
        let mut loads = m.shard_loads().to_vec();
        loads.sort_unstable();
        assert_eq!(loads, vec![1, 1]);
        m.tick(Timestamp(0), &[0.4, 0.6]).unwrap();
        assert_eq!(m.result(QueryId(2)).unwrap().len(), 1);
    }

    #[test]
    fn shared_space_stays_flat_as_shards_grow() {
        let build = |shards| {
            let mut m =
                SharedSmaMonitor::new(2, WindowSpec::Count(2000), GridSpec::PerDim(12), shards)
                    .unwrap();
            for i in 0..8u64 {
                m.register_query(
                    QueryId(i),
                    Query::top_k(ScoreFn::linear(vec![1.0, 1.0 + i as f64]).unwrap(), 4).unwrap(),
                )
                .unwrap();
            }
            for tick in 0..10u64 {
                m.tick(Timestamp(tick), &lcg_stream(tick, 200, 2)).unwrap();
            }
            m.space_bytes()
        };
        let s1 = build(1);
        let s4 = build(4);
        assert!(
            (s4 as f64) < 1.5 * s1 as f64,
            "shared monitor at S=4 uses {s4} bytes vs {s1} at S=1 — tuple storage is replicated?"
        );
    }

    /// Satellite regression: a panicking shard must surface as
    /// `TkmError::Internal`, not abort the process.
    struct PanicEngine {
        armed: bool,
    }

    impl ContinuousTopK for PanicEngine {
        fn name(&self) -> &'static str {
            "PANIC"
        }
        fn dims(&self) -> usize {
            1
        }
        fn register_query(&mut self, _: QueryId, _: Query) -> Result<()> {
            Ok(())
        }
        fn remove_query(&mut self, _: QueryId) -> Result<()> {
            Ok(())
        }
        fn tick(&mut self, _: Timestamp, _: &[f64]) -> Result<()> {
            if self.armed {
                panic!("injected shard failure");
            }
            Ok(())
        }
        fn result(&self, _: QueryId) -> Result<Vec<Scored>> {
            Ok(Vec::new())
        }
        fn snapshot(&mut self, _: &Query) -> Result<Vec<Scored>> {
            Ok(Vec::new())
        }
        fn space_bytes(&self) -> usize {
            std::mem::size_of::<Self>()
        }
    }

    #[test]
    fn panicking_shard_reports_internal_error() {
        let mut m = ParallelMonitor::new(vec![
            PanicEngine { armed: false },
            PanicEngine { armed: true },
            PanicEngine { armed: false },
        ])
        .unwrap();
        // Silence the default panic hook for the injected panic; restore
        // afterwards so unrelated failures still print. The tick runs under
        // catch_unwind so the hook is restored even if it panics itself.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.tick(Timestamp(0), &[0.5])
        }));
        std::panic::set_hook(hook);
        match out.expect("tick itself must not panic") {
            Err(TkmError::Internal(msg)) => {
                assert!(msg.contains("injected shard failure"), "got: {msg}")
            }
            other => panic!("expected Internal error, got {other:?}"),
        }
    }

    /// Satellite regression: the bookkeeping maps count toward space.
    #[test]
    fn space_bytes_includes_assignment_bookkeeping() {
        let mut m = ParallelMonitor::with_replicas(2, || {
            SmaMonitor::new(1, WindowSpec::Count(10), GridSpec::PerDim(4))
        })
        .unwrap();
        let empty = m.space_bytes();
        for i in 0..512u64 {
            m.register_query(
                QueryId(i),
                Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 1).unwrap(),
            )
            .unwrap();
        }
        let loaded = m.space_bytes();
        // Per-query state + per-entry assignment overhead must both show.
        assert!(
            loaded >= empty + 512 * (std::mem::size_of::<QueryId>() + std::mem::size_of::<usize>()),
            "space_bytes ignores the assignment map: {empty} -> {loaded}"
        );
    }
}
