//! The shared ingest stage: one window + one grid, populated exactly once
//! per processing cycle.
//!
//! The paper's server couples tuple storage and query maintenance in one
//! loop. For scale-out we split them: [`IngestState`] owns everything that
//! is *per-stream* (the sliding window, the grid's point lists, the expiry
//! bookkeeping), while the per-query state (influence regions, top-lists,
//! skybands) lives in [`crate::maintenance::QueryMaintenance`]
//! implementations that can be partitioned across shards. Each tick,
//! [`IngestState::ingest`] applies the arrival set and the expiry set to
//! window and grid *once* and records both as `(cell, tuple)` event lists;
//! maintenance shards then replay the events against their own queries
//! through immutable `&IngestState` views. Tuple storage therefore stays
//! O(1) in the shard count, instead of the S-fold replication a
//! replica-per-shard design pays.

use crate::tma::GridSpec;
use tkm_common::{Result, Timestamp, TkmError, TupleId};
use tkm_grid::{CellId, CellMode, Grid};
use tkm_window::{Window, WindowSpec};

/// Validates a flat arrival buffer against the workspace: the single
/// entry-point check shared by every ingest path (the TMA/SMA monitors
/// via [`IngestState::ingest`], the threshold monitor, and the
/// brute-force oracle), so all engines reject malformed input with the
/// same error message.
pub(crate) fn validate_arrivals(dims: usize, arrivals: &[f64]) -> Result<()> {
    if !arrivals.len().is_multiple_of(dims) {
        return Err(TkmError::InvalidParameter(format!(
            "tick: arrival buffer length {} is not a multiple of dims {dims}",
            arrivals.len()
        )));
    }
    if let Some(bad) = arrivals.iter().find(|x| !(0.0..=1.0).contains(*x)) {
        return Err(TkmError::InvalidParameter(format!(
            "tick: coordinate {bad} outside the unit workspace"
        )));
    }
    Ok(())
}

/// Counters of the ingest stage (the stream-side half of
/// [`crate::stats::EngineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Processing cycles executed.
    pub ticks: u64,
    /// Tuples inserted.
    pub arrivals: u64,
    /// Tuples expired.
    pub expirations: u64,
}

/// One cycle's events of one kind (arrivals or expiries), re-grouped by
/// grid cell for the maintenance replay loop.
///
/// A cell's influence list is identical for every event landing in that
/// cell, so the per-event work of a tick factors into per-*run* work: the
/// replay loop probes each cell's list once and streams the run's tuples
/// through it. The group-by is two O(E) passes (count per distinct cell,
/// then a stable scatter) using an epoch-stamped per-cell table — no sort,
/// so a tick's grouping cost never exceeds a couple of linear scans even
/// for ingest-bound workloads. Runs come out in first-touched order with
/// FIFO (arrival) order within each run; the replay loops never depend on
/// the order *across* cells. All buffers retain capacity across ticks.
///
/// Arrival runs carry no coordinate copy of their own: a cycle's live
/// arrivals in cell `c` are exactly the **tail** of `c`'s coordinate-inline
/// point block (arrivals append at the tail, expiry only consumes the
/// front), so the replay loop slices the packed coordinates straight out of
/// the grid — see [`IngestState::arrival_run_coords`].
#[derive(Debug)]
struct CellGroups {
    /// Per-cell `(epoch stamp, run index)`: the run index is valid while
    /// the stamp equals `epoch` (bumping the epoch invalidates all
    /// entries in O(1)). One array, so each event touches one cache line
    /// here, not two.
    cell_run: Vec<(u32, u32)>,
    epoch: u32,
    /// `(cell, start, len)` runs indexing into `ids`, first-touched order.
    runs: Vec<(CellId, u32, u32)>,
    /// Per-run scatter cursors (pass 2 scratch).
    cursors: Vec<u32>,
    /// Tuple ids, concatenated run by run.
    ids: Vec<TupleId>,
}

impl CellGroups {
    fn new(num_cells: usize) -> CellGroups {
        CellGroups {
            cell_run: vec![(0, 0); num_cells],
            epoch: 0,
            runs: Vec::new(),
            cursors: Vec::new(),
            ids: Vec::new(),
        }
    }

    fn rebuild(&mut self, events: &[(CellId, TupleId)]) {
        self.runs.clear();
        self.ids.clear();
        self.cursors.clear();
        if events.is_empty() {
            return;
        }
        if self.epoch == u32::MAX {
            self.cell_run.fill((0, 0));
            self.epoch = 0;
        }
        self.epoch += 1;
        // Pass 1: one run per distinct cell (first-touched order), counting
        // its events.
        for &(cell, _) in events {
            let slot = &mut self.cell_run[cell.0 as usize];
            if slot.0 == self.epoch {
                self.runs[slot.1 as usize].2 += 1;
            } else {
                *slot = (self.epoch, self.runs.len() as u32);
                self.runs.push((cell, 0, 1));
            }
        }
        // Prefix sums fix each run's start offset.
        let mut start = 0u32;
        for r in &mut self.runs {
            r.1 = start;
            start += r.2;
        }
        // Pass 2: stable scatter — event order is preserved within runs.
        self.cursors.resize(self.runs.len(), 0);
        self.ids.resize(events.len(), TupleId(0));
        for &(cell, id) in events {
            let run = self.cell_run[cell.0 as usize].1 as usize;
            let pos = self.runs[run].1 + self.cursors[run];
            self.cursors[run] += 1;
            self.ids[pos as usize] = id;
        }
    }

    fn iter(&self) -> impl Iterator<Item = (CellId, &[TupleId])> {
        self.runs.iter().map(move |&(cell, start, len)| {
            (cell, &self.ids[start as usize..(start + len) as usize])
        })
    }

    fn space_bytes(&self) -> usize {
        self.cell_run.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.cursors.capacity() * std::mem::size_of::<u32>()
            + self.runs.capacity() * std::mem::size_of::<(CellId, u32, u32)>()
            + self.ids.capacity() * std::mem::size_of::<TupleId>()
    }
}

/// Shared per-stream state: window, grid and the event lists of the most
/// recent processing cycle.
#[derive(Debug)]
pub struct IngestState {
    window: Window,
    grid: Grid,
    /// `(cell, tuple)` of every arrival of the last cycle, arrival order.
    arrivals: Vec<(CellId, TupleId)>,
    /// `(cell, tuple)` of every expiry of the last cycle, expiry order.
    expiries: Vec<(CellId, TupleId)>,
    /// The arrival events of the last cycle, grouped by cell.
    arrival_groups: CellGroups,
    /// The expiry events of the last cycle, grouped by cell.
    expiry_groups: CellGroups,
    stats: IngestStats,
}

impl IngestState {
    /// Creates the shared state for `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<IngestState> {
        let grid = grid.build(dims, CellMode::Fifo)?;
        let cells = grid.num_cells();
        Ok(IngestState {
            window: Window::new(dims, window)?,
            grid,
            arrivals: Vec::new(),
            expiries: Vec::new(),
            arrival_groups: CellGroups::new(cells),
            expiry_groups: CellGroups::new(cells),
            stats: IngestStats::default(),
        })
    }

    /// Dimensionality of the monitored stream.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The shared window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// The shared grid (read access).
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Executes the stream half of one processing cycle: validates and
    /// inserts the arrival batch (window + grid), then drains the expiry
    /// set, recording both as event lists for the maintenance stage.
    ///
    /// Tuples that arrive and expire within the same cycle (a count window
    /// overrun by a burst) appear in both lists; their coordinates are no
    /// longer resolvable afterwards, which maintenance handles by skipping
    /// arrivals whose ids have already left the window.
    // lint: hot-path
    pub fn ingest(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        self.stats.ticks += 1;
        self.arrivals.clear();
        self.expiries.clear();

        for coords in arrivals.chunks_exact(dims) {
            let id = self.window.insert(coords, now)?;
            self.stats.arrivals += 1;
            let cell = self.grid.insert_point(coords, id);
            self.arrivals.push((cell, id));
        }

        let Self {
            window,
            grid,
            expiries,
            stats,
            ..
        } = self;
        window.drain_expired(now, |id, coords| {
            stats.expirations += 1;
            let cell = grid
                .remove_point(coords, id)
                // lint: allow(panic, reason=window/grid lockstep is the ingest invariant; desync is unrecoverable)
                .expect("window and grid are updated in lockstep");
            expiries.push((cell, id));
        });
        self.arrival_groups.rebuild(&self.arrivals);
        self.expiry_groups.rebuild(&self.expiries);
        Ok(())
    }

    /// `(cell, tuple)` events of the last cycle's arrival set, in arrival
    /// order.
    #[inline]
    pub fn arrival_events(&self) -> &[(CellId, TupleId)] {
        &self.arrivals
    }

    /// `(cell, tuple)` events of the last cycle's expiry set, in expiry
    /// (arrival) order.
    #[inline]
    pub fn expiry_events(&self) -> &[(CellId, TupleId)] {
        &self.expiries
    }

    /// The last cycle's arrival events grouped by cell: one `(cell,
    /// tuples)` run per distinct cell (first-touched order), tuples in
    /// arrival order within each run. The maintenance replay loop probes
    /// each cell's influence list once per run instead of once per event;
    /// the run's coordinates come from
    /// [`IngestState::arrival_run_coords`].
    #[inline]
    pub fn arrival_runs(&self) -> impl Iterator<Item = (CellId, &[TupleId])> {
        self.arrival_groups.iter()
    }

    /// The packed coordinates of the `live` still-valid arrivals of this
    /// cycle's run in `cell` — the tail of the cell's coordinate-inline
    /// point block, which holds exactly those arrivals: arrivals append at
    /// the tail and expiry only consumes the front, so no per-event
    /// coordinate copy (let alone a per-tuple window resolution) is ever
    /// made. `live` must be the number of run tuples still in the window
    /// (same-cycle transients sliced off), as computed by the replay
    /// loop's live-suffix step.
    #[inline]
    pub fn arrival_run_coords(&self, cell: CellId, live: usize) -> &[f64] {
        let points = self.grid.cell(cell).points();
        let coords = points.coords();
        debug_assert!(live <= points.len());
        &coords[coords.len() - live * self.dims()..]
    }

    /// The last cycle's expiry events grouped by cell (one run per
    /// distinct cell, FIFO order within each run).
    #[inline]
    pub fn expiry_runs(&self) -> impl Iterator<Item = (CellId, &[TupleId])> {
        self.expiry_groups.iter()
    }

    /// Cumulative stream-side counters.
    #[inline]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Deep size estimate in bytes: the tuple storage that sharded
    /// maintenance *shares* instead of replicating.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.grid.space_bytes()
            + (self.arrivals.capacity() + self.expiries.capacity())
                * std::mem::size_of::<(CellId, TupleId)>()
            + self.arrival_groups.space_bytes()
            + self.expiry_groups.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_mirror_window_and_grid() {
        let mut s = IngestState::new(2, WindowSpec::Count(3), GridSpec::PerDim(4)).unwrap();
        s.ingest(Timestamp(0), &[0.1, 0.1, 0.9, 0.9]).unwrap();
        assert_eq!(s.arrival_events().len(), 2);
        assert!(s.expiry_events().is_empty());
        assert_eq!(s.window().len(), 2);

        // Two more arrivals overflow the count window by one.
        s.ingest(Timestamp(1), &[0.5, 0.5, 0.2, 0.8]).unwrap();
        assert_eq!(s.arrival_events().len(), 2);
        assert_eq!(s.expiry_events().len(), 1);
        assert_eq!(s.expiry_events()[0].1, TupleId(0));
        assert_eq!(s.window().len(), 3);
        // The expired tuple's cell matches where it was inserted.
        assert_eq!(s.expiry_events()[0].0, s.grid().locate(&[0.1, 0.1]));

        let st = s.stats();
        assert_eq!((st.ticks, st.arrivals, st.expirations), (2, 4, 1));
    }

    #[test]
    fn burst_larger_than_window_expires_same_cycle() {
        let mut s = IngestState::new(1, WindowSpec::Count(2), GridSpec::PerDim(4)).unwrap();
        s.ingest(Timestamp(0), &[0.1, 0.3, 0.5, 0.7]).unwrap();
        assert_eq!(s.arrival_events().len(), 4);
        assert_eq!(s.expiry_events().len(), 2, "same-cycle transients");
        // Transients are gone from the window; survivors resolve.
        assert!(s.window().coords(TupleId(0)).is_none());
        assert!(s.window().coords(TupleId(3)).is_some());
        // Tail-slice invariant under transients: each run's live suffix
        // maps exactly onto the tail of its cell's point block.
        let oldest = s.window().oldest().unwrap();
        for (cell, ids) in s.arrival_runs() {
            let live: Vec<TupleId> = ids.iter().copied().filter(|id| *id >= oldest).collect();
            let coords = s.arrival_run_coords(cell, live.len());
            assert_eq!(coords.len(), live.len(), "dims = 1");
            for (id, c) in live.iter().zip(coords) {
                assert_eq!(s.window().coords(*id).unwrap(), &[*c]);
            }
        }
    }

    #[test]
    fn runs_group_events_by_cell() {
        let mut s = IngestState::new(1, WindowSpec::Count(16), GridSpec::PerDim(4)).unwrap();
        // Cells for per_dim=4: 0.1→cell0, 0.3→cell1, 0.9→cell3.
        s.ingest(Timestamp(0), &[0.1, 0.9, 0.12, 0.3, 0.15])
            .unwrap();
        let runs: Vec<(u32, Vec<u64>)> = s
            .arrival_runs()
            .map(|(c, ids)| (c.0, ids.iter().map(|t| t.0).collect()))
            .collect();
        // One run per distinct cell in first-touched order; arrival (id)
        // order within each run.
        assert_eq!(runs, vec![(0, vec![0, 2, 4]), (3, vec![1]), (1, vec![3])]);
        // A run's coordinates are the tail of its cell's point block,
        // aligned with the run's ids.
        let coord_runs: Vec<Vec<f64>> = s
            .arrival_runs()
            .map(|(c, ids)| s.arrival_run_coords(c, ids.len()).to_vec())
            .collect();
        assert_eq!(
            coord_runs,
            vec![vec![0.1, 0.12, 0.15], vec![0.9], vec![0.3]]
        );
        // Runs cover exactly the flat event list.
        let flat: usize = s.arrival_runs().map(|(_, ids)| ids.len()).sum();
        assert_eq!(flat, s.arrival_events().len());
        assert!(s.expiry_runs().next().is_none());

        // Expiries group the same way (capacity 16 → push 14 more).
        let burst: Vec<f64> = (0..14).map(|i| (i % 10) as f64 / 10.0).collect();
        s.ingest(Timestamp(1), &burst).unwrap();
        s.ingest(Timestamp(2), &[0.5, 0.5, 0.5]).unwrap();
        let expired: usize = s.expiry_runs().map(|(_, ids)| ids.len()).sum();
        assert_eq!(expired, s.expiry_events().len());
        let mut cells: Vec<u32> = s.expiry_runs().map(|(c, _)| c.0).collect();
        let distinct = cells.len();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), distinct, "exactly one run per distinct cell");
    }

    #[test]
    fn rejects_bad_input() {
        let mut s = IngestState::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        assert!(s.ingest(Timestamp(0), &[0.5]).is_err());
        assert!(s.ingest(Timestamp(0), &[0.5, 1.2]).is_err());
    }

    /// Every tick entry point funnels through [`validate_arrivals`], so a
    /// misaligned arrival buffer must produce the *identical* error
    /// message from all four engines — a client switching engines sees
    /// the same diagnostic.
    #[test]
    fn dims_mismatch_message_is_shared_across_engines() {
        use crate::oracle::OracleMonitor;
        use crate::sma::SmaMonitor;
        use crate::threshold::ThresholdMonitor;
        use crate::tma::TmaMonitor;
        use tkm_common::ScoreFn;

        let want = "tick: arrival buffer length 3 is not a multiple of dims 2";
        let bad = [0.1, 0.2, 0.3];

        let mut tma = TmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let mut sma = SmaMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let mut thr = ThresholdMonitor::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        let mut orc = OracleMonitor::new(2, WindowSpec::Count(4)).unwrap();
        thr.register_query(
            tkm_common::QueryId(0),
            ScoreFn::linear(vec![1.0, 1.0]).unwrap(),
            0.5,
        )
        .unwrap();

        for err in [
            tma.tick(Timestamp(0), &bad).unwrap_err(),
            sma.tick(Timestamp(0), &bad).unwrap_err(),
            thr.tick(Timestamp(0), &bad).unwrap_err(),
            orc.tick(Timestamp(0), &bad).unwrap_err(),
        ] {
            match err {
                tkm_common::TkmError::InvalidParameter(msg) => assert_eq!(msg, want),
                other => panic!("expected InvalidParameter, got {other:?}"),
            }
        }
    }
}
