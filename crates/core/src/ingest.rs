//! The shared ingest stage: one window + one grid, populated exactly once
//! per processing cycle.
//!
//! The paper's server couples tuple storage and query maintenance in one
//! loop. For scale-out we split them: [`IngestState`] owns everything that
//! is *per-stream* (the sliding window, the grid's point lists, the expiry
//! bookkeeping), while the per-query state (influence regions, top-lists,
//! skybands) lives in [`crate::maintenance::QueryMaintenance`]
//! implementations that can be partitioned across shards. Each tick,
//! [`IngestState::ingest`] applies the arrival set and the expiry set to
//! window and grid *once* and records both as `(cell, tuple)` event lists;
//! maintenance shards then replay the events against their own queries
//! through immutable `&IngestState` views. Tuple storage therefore stays
//! O(1) in the shard count, instead of the S-fold replication a
//! replica-per-shard design pays.

use crate::tma::{validate_arrivals, GridSpec};
use tkm_common::{Result, Timestamp, TupleId};
use tkm_grid::{CellId, CellMode, Grid};
use tkm_window::{Window, WindowSpec};

/// Counters of the ingest stage (the stream-side half of
/// [`crate::stats::EngineStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Processing cycles executed.
    pub ticks: u64,
    /// Tuples inserted.
    pub arrivals: u64,
    /// Tuples expired.
    pub expirations: u64,
}

/// Shared per-stream state: window, grid and the event lists of the most
/// recent processing cycle.
#[derive(Debug)]
pub struct IngestState {
    window: Window,
    grid: Grid,
    /// `(cell, tuple)` of every arrival of the last cycle, arrival order.
    arrivals: Vec<(CellId, TupleId)>,
    /// `(cell, tuple)` of every expiry of the last cycle, expiry order.
    expiries: Vec<(CellId, TupleId)>,
    stats: IngestStats,
}

impl IngestState {
    /// Creates the shared state for `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<IngestState> {
        Ok(IngestState {
            window: Window::new(dims, window)?,
            grid: grid.build(dims, CellMode::Fifo)?,
            arrivals: Vec::new(),
            expiries: Vec::new(),
            stats: IngestStats::default(),
        })
    }

    /// Dimensionality of the monitored stream.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The shared window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// The shared grid (read access).
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Executes the stream half of one processing cycle: validates and
    /// inserts the arrival batch (window + grid), then drains the expiry
    /// set, recording both as event lists for the maintenance stage.
    ///
    /// Tuples that arrive and expire within the same cycle (a count window
    /// overrun by a burst) appear in both lists; their coordinates are no
    /// longer resolvable afterwards, which maintenance handles by skipping
    /// arrivals whose ids have already left the window.
    pub fn ingest(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        self.stats.ticks += 1;
        self.arrivals.clear();
        self.expiries.clear();

        for coords in arrivals.chunks_exact(dims) {
            let id = self.window.insert(coords, now)?;
            self.stats.arrivals += 1;
            let cell = self.grid.insert_point(coords, id);
            self.arrivals.push((cell, id));
        }

        let Self {
            window,
            grid,
            expiries,
            stats,
            ..
        } = self;
        window.drain_expired(now, |id, coords| {
            stats.expirations += 1;
            let cell = grid
                .remove_point(coords, id)
                .expect("window and grid are updated in lockstep");
            expiries.push((cell, id));
        });
        Ok(())
    }

    /// `(cell, tuple)` events of the last cycle's arrival set, in arrival
    /// order.
    #[inline]
    pub fn arrival_events(&self) -> &[(CellId, TupleId)] {
        &self.arrivals
    }

    /// `(cell, tuple)` events of the last cycle's expiry set, in expiry
    /// (arrival) order.
    #[inline]
    pub fn expiry_events(&self) -> &[(CellId, TupleId)] {
        &self.expiries
    }

    /// Cumulative stream-side counters.
    #[inline]
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Deep size estimate in bytes: the tuple storage that sharded
    /// maintenance *shares* instead of replicating.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.grid.space_bytes()
            + (self.arrivals.capacity() + self.expiries.capacity())
                * std::mem::size_of::<(CellId, TupleId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_mirror_window_and_grid() {
        let mut s = IngestState::new(2, WindowSpec::Count(3), GridSpec::PerDim(4)).unwrap();
        s.ingest(Timestamp(0), &[0.1, 0.1, 0.9, 0.9]).unwrap();
        assert_eq!(s.arrival_events().len(), 2);
        assert!(s.expiry_events().is_empty());
        assert_eq!(s.window().len(), 2);

        // Two more arrivals overflow the count window by one.
        s.ingest(Timestamp(1), &[0.5, 0.5, 0.2, 0.8]).unwrap();
        assert_eq!(s.arrival_events().len(), 2);
        assert_eq!(s.expiry_events().len(), 1);
        assert_eq!(s.expiry_events()[0].1, TupleId(0));
        assert_eq!(s.window().len(), 3);
        // The expired tuple's cell matches where it was inserted.
        assert_eq!(s.expiry_events()[0].0, s.grid().locate(&[0.1, 0.1]));

        let st = s.stats();
        assert_eq!((st.ticks, st.arrivals, st.expirations), (2, 4, 1));
    }

    #[test]
    fn burst_larger_than_window_expires_same_cycle() {
        let mut s = IngestState::new(1, WindowSpec::Count(2), GridSpec::PerDim(4)).unwrap();
        s.ingest(Timestamp(0), &[0.1, 0.3, 0.5, 0.7]).unwrap();
        assert_eq!(s.arrival_events().len(), 4);
        assert_eq!(s.expiry_events().len(), 2, "same-cycle transients");
        // Transients are gone from the window; survivors resolve.
        assert!(s.window().coords(TupleId(0)).is_none());
        assert!(s.window().coords(TupleId(3)).is_some());
    }

    #[test]
    fn rejects_bad_input() {
        let mut s = IngestState::new(2, WindowSpec::Count(4), GridSpec::PerDim(4)).unwrap();
        assert!(s.ingest(Timestamp(0), &[0.5]).is_err());
        assert!(s.ingest(Timestamp(0), &[0.5, 1.2]).is_err());
    }
}
