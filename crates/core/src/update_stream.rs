//! Top-k monitoring over *update streams* (paper §7): streams with explicit
//! deletions instead of sliding-window expiry.
//!
//! Tuples no longer leave in arrival order, so the FIFO machinery is
//! replaced: the backing store is a slab with hash lookup and the grid
//! cells delete from their coordinate-inline point blocks by id-indexed
//! swap-remove. TMA carries over directly — a deletion
//! hitting a result triggers recomputation. SMA does **not** apply: the
//! skyband reduction requires knowing the expiry order in advance, which an
//! update stream does not provide (constructing [`UpdateStreamTma`] is the
//! only supported option, and the crate intentionally offers no SMA
//! counterpart).

use crate::compute::{compute_topk, ComputeScratch, InfluenceUpdate};
use crate::influence::{cleanup_from_frontier, remove_query_walk};
use crate::kernel;
use crate::query::Query;
use crate::registry::QueryRegistry;
use crate::result::TopList;
use crate::stats::EngineStats;
use crate::tma::GridSpec;
use tkm_common::{QueryId, QuerySlot, Result, Scored, TkmError, TupleId};
use tkm_grid::{CellMode, Grid, InfluenceTable};
use tkm_window::SlabStore;

/// One operation of an update stream.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateOp {
    /// Insert a tuple with these coordinates.
    Insert(Vec<f64>),
    /// Delete a previously inserted tuple.
    Delete(TupleId),
}

#[derive(Debug)]
struct UsQuery {
    query: Query,
    top: TopList,
    affected: bool,
    /// [`ComputeOutcome::region_bound`] of the last computation: cells
    /// with traversal keys strictly above this already carry the slot.
    ///
    /// [`ComputeOutcome::region_bound`]: crate::compute::ComputeOutcome
    region_bound: f64,
}

/// TMA over an explicit-deletion update stream.
#[derive(Debug)]
pub struct UpdateStreamTma {
    store: SlabStore,
    grid: Grid,
    influence: InfluenceTable,
    scratch: ComputeScratch,
    queries: QueryRegistry<UsQuery>,
    stats: EngineStats,
    /// Reused per-cycle scratch: slots whose result lost a tuple.
    affected: Vec<QuerySlot>,
}

impl UpdateStreamTma {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, grid: GridSpec) -> Result<UpdateStreamTma> {
        let grid = grid.build(dims, CellMode::Hash)?;
        let scratch = ComputeScratch::new(grid.num_cells());
        let influence = InfluenceTable::new(grid.num_cells());
        Ok(UpdateStreamTma {
            store: SlabStore::new(dims)?,
            grid,
            influence,
            scratch,
            queries: QueryRegistry::new(),
            stats: EngineStats::default(),
            affected: Vec::new(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.store.dims()
    }

    /// The backing store (read access).
    #[inline]
    pub fn store(&self) -> &SlabStore {
        &self.store
    }

    /// The underlying grid (read access, for diagnostics).
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Registers a query and computes its initial result.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        let k = query.k;
        let slot = self.queries.insert(
            id,
            UsQuery {
                query,
                top: TopList::new(k),
                affected: false,
                region_bound: f64::INFINITY,
            },
        )?;
        let Self {
            grid,
            influence,
            scratch,
            queries,
            stats,
            ..
        } = self;
        let (_, st) = queries.slot_mut(slot);
        let out = compute_topk(
            grid,
            scratch,
            Some(InfluenceUpdate::fresh(influence, slot)),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            false,
            Some(std::mem::take(&mut st.top)),
        );
        stats.recompute_queries += 1;
        stats.recompute_groups += 1;
        stats.cells_processed += out.stats.cells_processed;
        stats.points_scanned += out.stats.points_scanned;
        st.top = out.top;
        st.region_bound = out.region_bound;
        Ok(())
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let (slot, st) = self.queries.remove(id)?;
        // Unlike the sliding-window engines (whose affected list lives only
        // inside one `apply_events` call), this one persists across the
        // open cycle — drop the slot before it is freed, or `end_cycle`
        // would resolve a dead (or recycled) slot.
        self.affected.retain(|s| *s != slot);
        self.stats.cleanup_cells += remove_query_walk(
            &self.grid,
            &mut self.influence,
            &mut self.scratch,
            slot,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    /// The current top-k result of a query, best first. Valid after
    /// [`UpdateStreamTma::end_cycle`] (deletions mid-cycle leave affected
    /// queries unresolved until then).
    pub fn result(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(id)
            .map(|q| q.top.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Inserts a tuple, updating affected results immediately.
    pub fn insert(&mut self, coords: &[f64]) -> Result<TupleId> {
        if coords.len() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: coords.len(),
            });
        }
        if let Some(bad) = coords.iter().find(|x| !(0.0..=1.0).contains(*x)) {
            return Err(TkmError::InvalidParameter(format!(
                "insert: coordinate {bad} outside the unit workspace"
            )));
        }
        let id = self.store.insert(coords)?;
        self.stats.arrivals += 1;
        let cell = self.grid.insert_point(coords, id);
        let queries = &mut self.queries;
        let slots = self.influence.as_slice(cell);
        // Each update is a cell run of one tuple, so the per-(run × query)
        // probe count equals the list length (same semantics as the
        // sliding-window engines' cell-grouped replay).
        self.stats.cell_probes += slots.len() as u64;
        for &slot in slots {
            self.stats.tuple_probes += 1;
            let (_, st) = queries.slot_mut(slot);
            if let Some(r) = &st.query.constraint {
                if !r.contains(coords) {
                    continue;
                }
            }
            let score = kernel::score_point(&st.query.f, coords);
            if score >= st.top.threshold() && st.top.offer(Scored::new(score, id)) {
                self.stats.result_updates += 1;
            }
        }
        Ok(id)
    }

    /// Deletes a tuple, marking queries whose result it was part of.
    pub fn delete(&mut self, id: TupleId) -> Result<()> {
        let mut scratch = self.scratch.coords;
        self.store.remove_into(id, &mut scratch)?;
        self.stats.expirations += 1;
        let coords = &scratch[..self.dims()];
        let cell = self
            .grid
            .remove_point(coords, id)
            // lint: allow(panic, reason=store/grid lockstep is the ingest invariant; desync is unrecoverable)
            .expect("store and grid are updated in lockstep");
        let queries = &mut self.queries;
        let slots = self.influence.as_slice(cell);
        self.stats.cell_probes += slots.len() as u64;
        for &slot in slots {
            self.stats.tuple_probes += 1;
            let (_, st) = queries.slot_mut(slot);
            if st.top.remove(id) && !st.affected {
                st.affected = true;
                self.affected.push(slot);
            }
        }
        Ok(())
    }

    /// Finishes a processing cycle: recomputes every query affected by
    /// deletions since the last call.
    pub fn end_cycle(&mut self) {
        self.stats.ticks += 1;
        let Self {
            grid,
            influence,
            scratch,
            queries,
            stats,
            affected,
            ..
        } = self;
        for &slot in affected.iter() {
            let (_, st) = queries.slot_mut(slot);
            st.affected = false;
            let out = compute_topk(
                grid,
                scratch,
                Some(InfluenceUpdate {
                    table: influence,
                    slot,
                    listed_above: st.region_bound,
                }),
                &st.query.f,
                st.query.k,
                st.query.constraint.as_ref(),
                false,
                Some(std::mem::take(&mut st.top)),
            );
            stats.recompute_queries += 1;
            stats.recompute_groups += 1;
            stats.cells_processed += out.stats.cells_processed;
            stats.points_scanned += out.stats.points_scanned;
            st.top = out.top;
            st.region_bound = out.region_bound;
            stats.cleanup_cells += cleanup_from_frontier(
                grid,
                influence,
                scratch,
                slot,
                &st.query.f,
                st.query.constraint.as_ref(),
            );
        }
        affected.clear();
    }

    /// Applies a batch of operations as one processing cycle; returns the
    /// ids assigned to the inserts, in order.
    pub fn apply(&mut self, ops: &[UpdateOp]) -> Result<Vec<TupleId>> {
        let mut ids = Vec::new();
        for op in ops {
            match op {
                UpdateOp::Insert(coords) => ids.push(self.insert(coords)?),
                UpdateOp::Delete(id) => self.delete(*id)?,
            }
        }
        self.end_cycle();
        Ok(ids)
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.store.space_bytes()
            + self.grid.space_bytes()
            + self.influence.space_bytes()
            + self.scratch.space_bytes()
            + self.queries.space_bytes()
            + self.affected.capacity() * std::mem::size_of::<QuerySlot>()
            + self
                .queries
                .iter()
                .map(|(_, q)| std::mem::size_of::<UsQuery>() + q.top.space_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::ScoreFn;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0)
    }

    fn brute(store: &SlabStore, q: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = store
            .iter()
            .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(q.f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(q.k);
        all
    }

    #[test]
    fn random_insert_delete_stream_matches_brute_force() {
        let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(6)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        let mut seed = 42u64;
        let mut live: Vec<TupleId> = Vec::new();
        for cycle in 0..60 {
            let mut ops = Vec::new();
            for _ in 0..4 {
                ops.push(UpdateOp::Insert(vec![lcg(&mut seed), lcg(&mut seed)]));
            }
            // Delete ~3 arbitrary live tuples (not FIFO!).
            for _ in 0..3 {
                if live.len() > 2 {
                    let idx = (lcg(&mut seed) * live.len() as f64) as usize % live.len();
                    ops.push(UpdateOp::Delete(live.swap_remove(idx)));
                }
            }
            let new_ids = m.apply(&ops).unwrap();
            live.extend(new_ids);
            assert_eq!(
                m.result(QueryId(0)).unwrap(),
                &brute(m.store(), &q)[..],
                "divergence at cycle {cycle}"
            );
        }
        assert!(m.stats().recomputations() > 1, "deletions hit the result");
    }

    #[test]
    fn delete_validation() {
        let mut m = UpdateStreamTma::new(1, GridSpec::PerDim(4)).unwrap();
        let id = m.insert(&[0.5]).unwrap();
        m.delete(id).unwrap();
        assert!(matches!(m.delete(id), Err(TkmError::UnknownTuple(_))));
        assert!(m.insert(&[1.5]).is_err());
        assert!(m.insert(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn deleting_entire_result_recovers() {
        let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        let a = m.insert(&[0.9, 0.9]).unwrap();
        let b = m.insert(&[0.8, 0.8]).unwrap();
        let _c = m.insert(&[0.1, 0.1]).unwrap();
        m.register_query(QueryId(1), q).unwrap();
        m.apply(&[UpdateOp::Delete(a), UpdateOp::Delete(b)])
            .unwrap();
        let res = m.result(QueryId(1)).unwrap();
        assert_eq!(res.len(), 1);
        assert!((res[0].score.get() - 0.2).abs() < 1e-12);
    }

    /// Regression: a query removed while deletions have it queued for
    /// recomputation must not leave its (freed, possibly recycled) slot in
    /// the pending-affected list — `end_cycle` would resolve a dead slot
    /// (panic) or recompute whichever query recycled it.
    #[test]
    fn removing_affected_query_before_end_cycle_is_safe() {
        let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        let a = m.insert(&[0.9, 0.9]).unwrap();
        let _b = m.insert(&[0.5, 0.5]).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        m.delete(a).unwrap(); // QueryId(0) is now pending recomputation
        m.remove_query(QueryId(0)).unwrap();
        // Recycle the freed slot with a fresh query before the cycle ends.
        m.register_query(QueryId(1), q.clone()).unwrap();
        let recomputes = m.stats().recomputations();
        m.end_cycle(); // must neither panic nor recompute the new query
        assert_eq!(m.stats().recomputations(), recomputes);
        assert_eq!(m.result(QueryId(1)).unwrap(), &brute(m.store(), &q)[..]);
    }

    #[test]
    fn constrained_update_stream() {
        let mut m = UpdateStreamTma::new(2, GridSpec::PerDim(5)).unwrap();
        let r = tkm_common::Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2, r).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        let mut seed = 7u64;
        let mut live = Vec::new();
        for _ in 0..30 {
            let id = m.insert(&[lcg(&mut seed), lcg(&mut seed)]).unwrap();
            live.push(id);
            if live.len() > 10 {
                let victim = live.remove(3);
                m.delete(victim).unwrap();
            }
            m.end_cycle();
            assert_eq!(m.result(QueryId(0)).unwrap(), &brute(m.store(), &q)[..]);
        }
    }
}
