//! The Skyband Monitoring Algorithm (SMA), paper §5 / Figure 11.
//!
//! SMA exploits the reduction from top-k monitoring to k-skyband
//! maintenance in (score, expiry-time) space: instead of just the current
//! top-k, each query keeps the k-skyband of the tuples scoring at least
//! `q.top_score` — the k-th score as of the last from-scratch computation.
//! Arrivals reaching that threshold enter the skyband (dominance counters
//! prune tuples that can never appear in a result); expiring result tuples
//! simply leave, and the next k best are already in the skyband. A
//! from-scratch recomputation is needed only when the skyband itself drops
//! below `k` entries — which, as the paper's analysis and experiments show,
//! is rare to nonexistent under steady workloads.
//!
//! [`SmaMonitor`] is a thin sandwich of the shared
//! [`crate::ingest::IngestState`] (window + grid, fed once per tick) and a
//! single [`crate::maintenance::SmaMaintenance`] stage — the same
//! maintenance code a [`crate::parallel::SharedParallelMonitor`] partitions
//! across shards.

use crate::ingest::IngestState;
use crate::maintenance::{QueryMaintenance, SmaMaintenance};
use crate::query::Query;
use crate::stats::EngineStats;
use crate::tma::GridSpec;
use tkm_common::{QueryId, Result, Scored, Timestamp};
use tkm_grid::{Grid, InfluenceTable};
use tkm_window::{Window, WindowSpec};

/// Continuous top-k monitor based on skyband maintenance (the paper's SMA).
#[derive(Debug)]
pub struct SmaMonitor {
    shared: IngestState,
    maint: SmaMaintenance,
}

impl SmaMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<SmaMonitor> {
        let shared = IngestState::new(dims, window, grid)?;
        let maint = SmaMaintenance::new_for(&shared);
        Ok(SmaMonitor { shared, maint })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.shared.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        self.shared.window()
    }

    /// The underlying grid (read access, for diagnostics).
    #[inline]
    pub fn grid(&self) -> &Grid {
        self.shared.grid()
    }

    /// The influence lists (read access, for diagnostics).
    #[inline]
    pub fn influence(&self) -> &InfluenceTable {
        self.maint.influence()
    }

    /// The dense slot a live query's influence-list entries carry
    /// (diagnostics).
    #[inline]
    pub fn query_slot(&self, id: QueryId) -> Option<tkm_common::QuerySlot> {
        self.maint.query_slot(id)
    }

    /// Registers a query, computing its initial skyband.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        self.maint.register_query(&self.shared, id, query)
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        self.maint.remove_query(&self.shared, id)
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.maint.query_ids()
    }

    /// The current top-k result (the first k skyband entries), best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        QueryMaintenance::result(&self.maint, id)
    }

    /// Current skyband size of a query (Table 2 reports its average).
    pub fn skyband_len(&self, id: QueryId) -> Result<usize> {
        self.maint.skyband_len(id)
    }

    /// Mean skyband size across queries.
    pub fn avg_skyband_len(&self) -> f64 {
        self.maint.avg_skyband_len()
    }

    /// Queries whose skyband changed during the last tick (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        self.maint.changed_queries()
    }

    /// Enables or disables batched shared recomputation (default: on).
    /// With batching off every deficiency fallback recomputes solo.
    pub fn set_batched_recompute(&mut self, on: bool) {
        self.maint.set_batched_recompute(on);
    }

    /// One-shot (snapshot) top-k over the current window contents, without
    /// registering anything.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        self.maint.snapshot(&self.shared, query)
    }

    /// Executes one processing cycle (Figure 11).
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        self.shared.ingest(now, arrivals)?;
        self.maint.apply_events(&self.shared)
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.maint.stats().with_ingest(self.shared.stats())
    }

    /// Deep size estimate in bytes: window + grid + influence lists +
    /// per-query skyband (`O(d + 3k)` per query as analysed in §6).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.shared.space_bytes() + self.maint.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Rect, ScoreFn, TkmError};

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute(window: &Window, q: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(q.f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(q.k);
        all
    }

    #[test]
    fn tracks_brute_force_over_stream() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(8)).unwrap();
        let q1 = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap();
        let q2 = Query::top_k(ScoreFn::quadratic(vec![1.0, 0.3]).unwrap(), 6).unwrap();
        m.register_query(QueryId(1), q1.clone()).unwrap();
        m.register_query(QueryId(2), q2.clone()).unwrap();
        for tick in 0..60u64 {
            let arrivals = lcg_stream(tick + 1, 8, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(1)).unwrap(), brute(m.window(), &q1));
            assert_eq!(m.result(QueryId(2)).unwrap(), brute(m.window(), &q2));
        }
        // The headline claim: SMA rarely/never recomputes in steady state
        // (two initial computations only, for uniform data).
        let s = m.stats();
        assert!(
            s.recomputations() <= 6,
            "SMA recomputed {} times — skyband maintenance is broken",
            s.recomputations()
        );
    }

    #[test]
    fn skyband_stays_small() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(100), GridSpec::PerDim(8)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![0.7, 0.9]).unwrap(), 10).unwrap();
        m.register_query(QueryId(0), q).unwrap();
        for tick in 0..50u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick, 10, 2)).unwrap();
        }
        let len = m.skyband_len(QueryId(0)).unwrap();
        assert!(len >= 10);
        assert!(
            len <= 40,
            "skyband grew to {len}; dominance pruning is broken"
        );
        assert_eq!(m.avg_skyband_len(), len as f64);
    }

    #[test]
    fn constrained_query_tracks_brute_force() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let r = Rect::new(vec![0.3, 0.1], vec![0.9, 0.6]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![2.0, 1.0]).unwrap(), 4, r).unwrap();
        m.register_query(QueryId(5), q.clone()).unwrap();
        for tick in 0..40u64 {
            let arrivals = lcg_stream(tick + 31, 6, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(5)).unwrap(), brute(m.window(), &q));
        }
    }

    #[test]
    fn time_window_tracks_brute_force() {
        let mut m = SmaMonitor::new(2, WindowSpec::Time(6), GridSpec::PerDim(6)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 0.5]).unwrap(), 3).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..30u64 {
            let n = 2 + (tick % 5) as usize;
            m.tick(Timestamp(tick), &lcg_stream(tick + 7, n, 2))
                .unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), brute(m.window(), &q));
        }
    }

    #[test]
    fn window_smaller_than_k_no_thrash() {
        let mut m = SmaMonitor::new(1, WindowSpec::Count(100), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 50).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..10u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick, 3, 1)).unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), brute(m.window(), &q));
        }
        // One initial computation; deficiency with an exhausted window must
        // not recompute every tick.
        assert_eq!(m.stats().recomputations(), 1);
    }

    #[test]
    fn registration_and_removal() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q),
            Err(TkmError::DuplicateQuery(_))
        ));
        m.remove_query(QueryId(0)).unwrap();
        assert!(m.remove_query(QueryId(0)).is_err());
        assert_eq!(m.influence().total_entries(), 0);
    }
}
