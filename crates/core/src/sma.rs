//! The Skyband Monitoring Algorithm (SMA), paper §5 / Figure 11.
//!
//! SMA exploits the reduction from top-k monitoring to k-skyband
//! maintenance in (score, expiry-time) space: instead of just the current
//! top-k, each query keeps the k-skyband of the tuples scoring at least
//! `q.top_score` — the k-th score as of the last from-scratch computation.
//! Arrivals reaching that threshold enter the skyband (dominance counters
//! prune tuples that can never appear in a result); expiring result tuples
//! simply leave, and the next k best are already in the skyband. A
//! from-scratch recomputation is needed only when the skyband itself drops
//! below `k` entries — which, as the paper's analysis and experiments show,
//! is rare to nonexistent under steady workloads.

use std::collections::BTreeMap;

use crate::compute::{compute_topk, ComputeScratch};
use crate::influence::{cleanup_from_frontier, remove_query_walk};
use crate::query::Query;
use crate::stats::EngineStats;
use crate::tma::{validate_arrivals, GridSpec};
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_grid::{CellMode, Grid};
use tkm_skyband::Skyband;
use tkm_window::{Window, WindowSpec};

#[derive(Debug)]
struct SmaQuery {
    query: Query,
    skyband: Skyband,
    /// k-th score at the last from-scratch computation; the skyband
    /// admission threshold (−∞ until the window holds k candidates).
    top_score: f64,
    touched: bool,
}

/// Continuous top-k monitor based on skyband maintenance (the paper's SMA).
#[derive(Debug)]
pub struct SmaMonitor {
    window: Window,
    grid: Grid,
    scratch: ComputeScratch,
    queries: BTreeMap<QueryId, SmaQuery>,
    stats: EngineStats,
    changed: Vec<QueryId>,
}

impl SmaMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec, grid: GridSpec) -> Result<SmaMonitor> {
        let grid = grid.build(dims, CellMode::Fifo)?;
        let scratch = ComputeScratch::new(grid.num_cells());
        Ok(SmaMonitor {
            window: Window::new(dims, window)?,
            grid,
            scratch,
            queries: BTreeMap::new(),
            stats: EngineStats::default(),
            changed: Vec::new(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    /// The underlying grid (read access, for diagnostics).
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Runs the computation module for `qid` and reseeds its skyband.
    fn recompute(
        grid: &mut Grid,
        scratch: &mut ComputeScratch,
        window: &Window,
        stats: &mut EngineStats,
        qid: QueryId,
        st: &mut SmaQuery,
    ) {
        let out = compute_topk(
            grid,
            &mut scratch.stamps,
            window,
            Some(qid),
            &st.query.f,
            st.query.k,
            st.query.constraint.as_ref(),
            true,
        );
        stats.recomputations += 1;
        stats.cells_processed += out.stats.cells_processed;
        stats.points_scanned += out.stats.points_scanned;
        stats.heap_pushes += out.stats.heap_pushes;
        // Seed the skyband with the top-k plus the candidates tying the
        // k-th score: a tie-loser outlives the tied result member and can
        // enter a future result, so dropping it would lose exactness.
        let mut seed: Vec<Scored> = Vec::with_capacity(out.top.len() + out.boundary_ties.len());
        seed.extend_from_slice(out.top.as_slice());
        seed.extend_from_slice(&out.boundary_ties);
        st.skyband.rebuild(&seed);
        st.top_score = out.top.threshold();
        stats.cleanup_cells += cleanup_from_frontier(
            grid,
            &mut scratch.stamps,
            qid,
            &st.query.f,
            st.query.constraint.as_ref(),
            &out.frontier,
        );
    }

    /// Registers a query, computing its initial skyband.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let mut st = SmaQuery {
            skyband: Skyband::new(query.k)?,
            query,
            top_score: f64::NEG_INFINITY,
            touched: false,
        };
        Self::recompute(
            &mut self.grid,
            &mut self.scratch,
            &self.window,
            &mut self.stats,
            id,
            &mut st,
        );
        self.queries.insert(id, st);
        Ok(())
    }

    /// Terminates a query, clearing its influence-list entries.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        let st = self.queries.remove(&id).ok_or(TkmError::UnknownQuery(id))?;
        self.stats.cleanup_cells += remove_query_walk(
            &mut self.grid,
            &mut self.scratch.stamps,
            id,
            &st.query.f,
            st.query.constraint.as_ref(),
        );
        Ok(())
    }

    /// Registered query ids.
    pub fn query_ids(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.queries.keys().copied()
    }

    /// The current top-k result (the first k skyband entries), best first.
    pub fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        self.queries
            .get(&id)
            .map(|q| q.skyband.top().iter().map(|e| e.scored).collect())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Current skyband size of a query (Table 2 reports its average).
    pub fn skyband_len(&self, id: QueryId) -> Result<usize> {
        self.queries
            .get(&id)
            .map(|q| q.skyband.len())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// Mean skyband size across queries.
    pub fn avg_skyband_len(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .values()
            .map(|q| q.skyband.len())
            .sum::<usize>() as f64
            / self.queries.len() as f64
    }

    /// Queries whose skyband changed during the last tick (sorted, deduped).
    pub fn changed_queries(&self) -> &[QueryId] {
        &self.changed
    }

    /// One-shot (snapshot) top-k over the current window contents, without
    /// registering anything.
    pub fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        let out = compute_topk(
            &mut self.grid,
            &mut self.scratch.stamps,
            &self.window,
            None,
            &query.f,
            query.k,
            query.constraint.as_ref(),
            false,
        );
        Ok(out.top.as_slice().to_vec())
    }

    /// Executes one processing cycle (Figure 11).
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        self.stats.ticks += 1;
        self.changed.clear();

        // ---- Pins (lines 4-11) ----
        {
            let Self {
                window,
                grid,
                queries,
                stats,
                ..
            } = self;
            for coords in arrivals.chunks_exact(dims) {
                let id = window.insert(coords, now)?;
                stats.arrivals += 1;
                let cell = grid.insert_point(coords, id);
                for qid in grid.cell(cell).influence_iter() {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if let Some(r) = &st.query.constraint {
                        if !r.contains(coords) {
                            continue;
                        }
                    }
                    let score = st.query.f.score(coords);
                    if score >= st.top_score {
                        st.skyband.insert(Scored::new(score, id));
                        st.touched = true;
                        stats.result_updates += 1;
                    }
                }
            }
        }

        // ---- Pdel (lines 12-16) ----
        {
            let Self {
                window,
                grid,
                queries,
                stats,
                ..
            } = self;
            window.drain_expired(now, |id, coords| {
                stats.expirations += 1;
                let cell = grid
                    .remove_point(coords, id)
                    .expect("window and grid are updated in lockstep");
                for qid in grid.cell(cell).influence_iter() {
                    stats.influence_probes += 1;
                    let st = queries.get_mut(&qid).expect("influence lists are swept");
                    if st.skyband.expire(id) {
                        st.touched = true;
                    }
                }
            });
        }

        // ---- Deficiency handling (lines 17-22) ----
        let touched: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(_, st)| st.touched)
            .map(|(id, _)| *id)
            .collect();
        for qid in touched {
            let st = self.queries.get_mut(&qid).expect("collected above");
            st.touched = false;
            // Recompute only if the skyband lost too many entries AND the
            // window could supply more (a window smaller than k can never
            // fill the band — recomputing every tick would be wasted work,
            // and the influence lists already cover the whole grid then).
            if st.skyband.is_deficient() && st.skyband.len() < self.window.len() {
                Self::recompute(
                    &mut self.grid,
                    &mut self.scratch,
                    &self.window,
                    &mut self.stats,
                    qid,
                    st,
                );
            }
            self.changed.push(qid);
        }

        self.changed.sort_unstable();
        self.changed.dedup();
        Ok(())
    }

    /// Cumulative counters.
    #[inline]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Deep size estimate in bytes: window + grid + per-query skyband
    /// (`O(d + 3k)` per query as analysed in §6).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self.grid.space_bytes()
            + self.scratch.stamps.space_bytes()
            + self
                .queries
                .values()
                .map(|q| std::mem::size_of::<SmaQuery>() + q.skyband.space_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Rect, ScoreFn};

    fn lcg_stream(seed: u64, n: usize, dims: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(1);
        let mut out = Vec::with_capacity(n * dims);
        for _ in 0..n * dims {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            out.push(((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.0, 1.0));
        }
        out
    }

    fn brute(window: &Window, q: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .filter(|(_, c)| q.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(q.f.score(c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(q.k);
        all
    }

    #[test]
    fn tracks_brute_force_over_stream() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(50), GridSpec::PerDim(8)).unwrap();
        let q1 = Query::top_k(ScoreFn::linear(vec![1.0, 2.0]).unwrap(), 3).unwrap();
        let q2 = Query::top_k(ScoreFn::quadratic(vec![1.0, 0.3]).unwrap(), 6).unwrap();
        m.register_query(QueryId(1), q1.clone()).unwrap();
        m.register_query(QueryId(2), q2.clone()).unwrap();
        for tick in 0..60u64 {
            let arrivals = lcg_stream(tick + 1, 8, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(1)).unwrap(), brute(m.window(), &q1));
            assert_eq!(m.result(QueryId(2)).unwrap(), brute(m.window(), &q2));
        }
        // The headline claim: SMA rarely/never recomputes in steady state
        // (two initial computations only, for uniform data).
        let s = m.stats();
        assert!(
            s.recomputations <= 6,
            "SMA recomputed {} times — skyband maintenance is broken",
            s.recomputations
        );
    }

    #[test]
    fn skyband_stays_small() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(100), GridSpec::PerDim(8)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![0.7, 0.9]).unwrap(), 10).unwrap();
        m.register_query(QueryId(0), q).unwrap();
        for tick in 0..50u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick, 10, 2)).unwrap();
        }
        let len = m.skyband_len(QueryId(0)).unwrap();
        assert!(len >= 10);
        assert!(
            len <= 40,
            "skyband grew to {len}; dominance pruning is broken"
        );
        assert_eq!(m.avg_skyband_len(), len as f64);
    }

    #[test]
    fn constrained_query_tracks_brute_force() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(40), GridSpec::PerDim(6)).unwrap();
        let r = Rect::new(vec![0.3, 0.1], vec![0.9, 0.6]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![2.0, 1.0]).unwrap(), 4, r).unwrap();
        m.register_query(QueryId(5), q.clone()).unwrap();
        for tick in 0..40u64 {
            let arrivals = lcg_stream(tick + 31, 6, 2);
            m.tick(Timestamp(tick), &arrivals).unwrap();
            assert_eq!(m.result(QueryId(5)).unwrap(), brute(m.window(), &q));
        }
    }

    #[test]
    fn time_window_tracks_brute_force() {
        let mut m = SmaMonitor::new(2, WindowSpec::Time(6), GridSpec::PerDim(6)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 0.5]).unwrap(), 3).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..30u64 {
            let n = 2 + (tick % 5) as usize;
            m.tick(Timestamp(tick), &lcg_stream(tick + 7, n, 2))
                .unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), brute(m.window(), &q));
        }
    }

    #[test]
    fn window_smaller_than_k_no_thrash() {
        let mut m = SmaMonitor::new(1, WindowSpec::Count(100), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 50).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        for tick in 0..10u64 {
            m.tick(Timestamp(tick), &lcg_stream(tick, 3, 1)).unwrap();
            assert_eq!(m.result(QueryId(0)).unwrap(), brute(m.window(), &q));
        }
        // One initial computation; deficiency with an exhausted window must
        // not recompute every tick.
        assert_eq!(m.stats().recomputations, 1);
    }

    #[test]
    fn registration_and_removal() {
        let mut m = SmaMonitor::new(2, WindowSpec::Count(10), GridSpec::PerDim(4)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q.clone()).unwrap();
        assert!(matches!(
            m.register_query(QueryId(0), q),
            Err(TkmError::DuplicateQuery(_))
        ));
        m.remove_query(QueryId(0)).unwrap();
        assert!(m.remove_query(QueryId(0)).is_err());
        let listed = m
            .grid()
            .cells()
            .filter(|(_, c)| c.influence_contains(QueryId(0)))
            .count();
        assert_eq!(listed, 0);
    }
}
