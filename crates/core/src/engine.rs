//! The engine abstraction: one interface over TMA, SMA, TSL and the
//! brute-force oracle.

use crate::oracle::OracleMonitor;
use crate::query::Query;
use crate::sma::SmaMonitor;
use crate::tma::{GridSpec, TmaMonitor};
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_tsl::{KmaxPolicy, TslMonitor};
use tkm_window::WindowSpec;

/// A continuous top-k monitoring engine.
///
/// All implementations report *identical* results for the same stream and
/// queries (the integration test suite enforces this); they differ only in
/// cost profile.
///
/// `Send` is a supertrait so a boxed engine (and the [`crate::server::
/// MonitorServer`] that owns one) can move into a serving thread; every
/// engine is plain owned data (custom scoring functions are already
/// `Send + Sync` via [`tkm_common::ScoringFunction`]).
pub trait ContinuousTopK: Send {
    /// Engine name for reports ("TMA", "SMA", "TSL", "ORACLE").
    fn name(&self) -> &'static str;

    /// Dimensionality of the monitored stream.
    fn dims(&self) -> usize;

    /// Registers a continuous query under a caller-chosen id.
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()>;

    /// Terminates a query.
    fn remove_query(&mut self, id: QueryId) -> Result<()>;

    /// Executes one processing cycle: `arrivals` is a flat coordinate
    /// buffer (one tuple per `dims` chunk), `now` drives time-based expiry.
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()>;

    /// The current top-k result of a query, best first.
    fn result(&self, id: QueryId) -> Result<Vec<Scored>>;

    /// One-shot (snapshot) top-k over the current window contents, leaving
    /// no monitoring state behind.
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>>;

    /// Deep size estimate of all engine state, in bytes.
    fn space_bytes(&self) -> usize;
}

impl ContinuousTopK for TmaMonitor {
    fn name(&self) -> &'static str {
        "TMA"
    }
    fn dims(&self) -> usize {
        TmaMonitor::dims(self)
    }
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        TmaMonitor::register_query(self, id, query)
    }
    fn remove_query(&mut self, id: QueryId) -> Result<()> {
        TmaMonitor::remove_query(self, id)
    }
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        TmaMonitor::tick(self, now, arrivals)
    }
    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        TmaMonitor::result(self, id).map(<[Scored]>::to_vec)
    }
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        TmaMonitor::snapshot(self, query)
    }
    fn space_bytes(&self) -> usize {
        TmaMonitor::space_bytes(self)
    }
}

impl ContinuousTopK for SmaMonitor {
    fn name(&self) -> &'static str {
        "SMA"
    }
    fn dims(&self) -> usize {
        SmaMonitor::dims(self)
    }
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        SmaMonitor::register_query(self, id, query)
    }
    fn remove_query(&mut self, id: QueryId) -> Result<()> {
        SmaMonitor::remove_query(self, id)
    }
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        SmaMonitor::tick(self, now, arrivals)
    }
    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        SmaMonitor::result(self, id)
    }
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        SmaMonitor::snapshot(self, query)
    }
    fn space_bytes(&self) -> usize {
        SmaMonitor::space_bytes(self)
    }
}

impl ContinuousTopK for TslMonitor {
    fn name(&self) -> &'static str {
        "TSL"
    }
    fn dims(&self) -> usize {
        TslMonitor::dims(self)
    }
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if query.constraint.is_some() {
            return Err(TkmError::Unsupported(
                "TSL (the baseline) handles plain top-k queries only".into(),
            ));
        }
        TslMonitor::register_query(self, id, query.f, query.k)
    }
    fn remove_query(&mut self, id: QueryId) -> Result<()> {
        TslMonitor::remove_query(self, id)
    }
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        TslMonitor::tick(self, now, arrivals)
    }
    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        TslMonitor::result(self, id).map(<[Scored]>::to_vec)
    }
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        if query.constraint.is_some() {
            return Err(TkmError::Unsupported(
                "TSL (the baseline) handles plain top-k queries only".into(),
            ));
        }
        TslMonitor::snapshot(self, &query.f, query.k)
    }
    fn space_bytes(&self) -> usize {
        TslMonitor::space_bytes(self)
    }
}

impl ContinuousTopK for OracleMonitor {
    fn name(&self) -> &'static str {
        "ORACLE"
    }
    fn dims(&self) -> usize {
        OracleMonitor::dims(self)
    }
    fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        OracleMonitor::register_query(self, id, query)
    }
    fn remove_query(&mut self, id: QueryId) -> Result<()> {
        OracleMonitor::remove_query(self, id)
    }
    fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        OracleMonitor::tick(self, now, arrivals)
    }
    fn result(&self, id: QueryId) -> Result<Vec<Scored>> {
        OracleMonitor::result(self, id).map(<[Scored]>::to_vec)
    }
    fn snapshot(&mut self, query: &Query) -> Result<Vec<Scored>> {
        OracleMonitor::snapshot(self, query)
    }
    fn space_bytes(&self) -> usize {
        OracleMonitor::space_bytes(self)
    }
}

/// Which engine a [`crate::server::MonitorServer`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// Top-k Monitoring Algorithm (§4).
    Tma,
    /// Skyband Monitoring Algorithm (§5).
    Sma,
    /// Threshold Sorted List baseline (§3.2).
    Tsl,
    /// Brute-force reference.
    Oracle,
}

/// Builds a boxed engine from the common configuration knobs.
pub fn build_engine(
    kind: EngineKind,
    dims: usize,
    window: WindowSpec,
    grid: GridSpec,
    kmax: KmaxPolicy,
) -> Result<Box<dyn ContinuousTopK>> {
    Ok(match kind {
        EngineKind::Tma => Box::new(TmaMonitor::new(dims, window, grid)?),
        EngineKind::Sma => Box::new(SmaMonitor::new(dims, window, grid)?),
        EngineKind::Tsl => Box::new(TslMonitor::new(dims, window, kmax)?),
        EngineKind::Oracle => Box::new(OracleMonitor::new(dims, window)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::{Rect, ScoreFn};

    #[test]
    fn all_engines_build_and_agree_on_a_tiny_stream() {
        let f = || ScoreFn::linear(vec![1.0, 2.0]).unwrap();
        let mut engines: Vec<Box<dyn ContinuousTopK>> = [
            EngineKind::Tma,
            EngineKind::Sma,
            EngineKind::Tsl,
            EngineKind::Oracle,
        ]
        .into_iter()
        .map(|k| {
            build_engine(
                k,
                2,
                WindowSpec::Count(6),
                GridSpec::PerDim(4),
                KmaxPolicy::Tuned,
            )
            .unwrap()
        })
        .collect();
        for e in &mut engines {
            e.register_query(QueryId(0), Query::top_k(f(), 2).unwrap())
                .unwrap();
        }
        let stream: [&[f64]; 3] = [
            &[0.1, 0.9, 0.8, 0.3, 0.5, 0.5],
            &[0.7, 0.7, 0.2, 0.2],
            &[0.95, 0.1, 0.4, 0.8],
        ];
        for (t, arrivals) in stream.iter().enumerate() {
            let reference = {
                let e = &mut engines[3];
                e.tick(Timestamp(t as u64), arrivals).unwrap();
                e.result(QueryId(0)).unwrap()
            };
            for e in engines[..3].iter_mut() {
                e.tick(Timestamp(t as u64), arrivals).unwrap();
                assert_eq!(e.result(QueryId(0)).unwrap(), reference, "{}", e.name());
            }
        }
    }

    #[test]
    fn tsl_rejects_constrained_queries() {
        let mut e = build_engine(
            EngineKind::Tsl,
            2,
            WindowSpec::Count(4),
            GridSpec::default(),
            KmaxPolicy::Tuned,
        )
        .unwrap();
        let r = Rect::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        let q = Query::constrained(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 1, r).unwrap();
        assert!(matches!(
            e.register_query(QueryId(0), q),
            Err(TkmError::Unsupported(_))
        ));
    }
}
