#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! Continuous top-k monitoring over sliding windows — the core engines.
//!
//! This crate implements the primary contribution of *Mouratidis, Bakiras,
//! Papadias: "Continuous Monitoring of Top-k Queries over Sliding Windows"
//! (SIGMOD 2006)*:
//!
//! * the **top-k computation module** ([`compute`]) that processes the
//!   minimal set of grid cells in descending `maxscore` order, streaming
//!   points out of the grid's coordinate-inline cell blocks through the
//!   dim-specialized **scoring kernels** ([`kernel`]);
//! * **TMA** ([`tma::TmaMonitor`]) — exact top-k lists, recomputed from
//!   scratch when results expire;
//! * **SMA** ([`sma::SmaMonitor`]) — k-skyband maintenance in (score, time)
//!   space that pre-computes future results and (nearly) never recomputes;
//! * lazy **influence-list** book-keeping with frontier clean-up walks
//!   ([`influence`]);
//! * the §7 extensions: **constrained** top-k queries ([`query::Query`]),
//!   **threshold** monitoring ([`threshold::ThresholdMonitor`]) and the
//!   explicit-deletion **update-stream** model
//!   ([`update_stream::UpdateStreamTma`]);
//! * a **brute-force oracle** ([`oracle::OracleMonitor`]) and a common
//!   engine trait ([`engine::ContinuousTopK`]) under which TMA, SMA, the
//!   TSL baseline and the oracle are interchangeable — and verified to
//!   report identical results;
//! * the scale-out split: a shared **ingest stage**
//!   ([`ingest::IngestState`] — one window + grid, populated once per
//!   tick) under shardable **query maintenance**
//!   ([`maintenance::QueryMaintenance`]), driven in parallel by
//!   [`parallel::SharedParallelMonitor`];
//! * a high-level [`server::MonitorServer`] facade, with per-tick result
//!   deltas ([`result::ResultDelta`]) and per-query delta routing
//!   ([`route::DeltaRouter`]) as the seam for serving layers such as the
//!   `tkm_service` wire protocol.

pub mod compute;
pub mod engine;
pub mod influence;
pub mod ingest;
pub mod kernel;
pub mod maintenance;
pub mod oracle;
pub mod parallel;
pub mod piecewise;
pub mod query;
pub mod registry;
pub mod result;
pub mod route;
pub mod server;
pub mod sma;
pub mod stats;
pub mod threshold;
pub mod tma;
pub mod update_stream;

pub use compute::{
    compute_topk, compute_topk_group, ComputeOutcome, ComputeScratch, ComputeStats, GroupMember,
    GroupOutcome, InfluenceUpdate,
};
pub use engine::{build_engine, ContinuousTopK, EngineKind};
pub use ingest::{IngestState, IngestStats};
pub use maintenance::{QueryMaintenance, SmaMaintenance, TmaMaintenance};
pub use oracle::OracleMonitor;
pub use parallel::{ParallelMonitor, SharedParallelMonitor, SharedSmaMonitor, SharedTmaMonitor};
pub use piecewise::{PiecewiseMonitor, PiecewiseQuery};
pub use query::Query;
pub use registry::QueryRegistry;
pub use result::{ResultDelta, TopList};
pub use route::DeltaRouter;
pub use server::{MonitorServer, ServerConfig};
pub use sma::SmaMonitor;
pub use stats::EngineStats;
pub use threshold::ThresholdMonitor;
pub use tma::{GridSpec, TmaMonitor};
pub use update_stream::{UpdateOp, UpdateStreamTma};
