//! Brute-force reference engine.
//!
//! Recomputes every query's result by scanning the whole window each tick —
//! `O(N·Q)` per cycle and therefore useless in production, but it is the
//! ground truth against which TMA, SMA and TSL are validated in the
//! integration tests (all four must report identical results on every tick
//! of every stream).

use std::collections::BTreeMap;

use crate::ingest::validate_arrivals;
use crate::kernel;
use crate::query::Query;
use tkm_common::{QueryId, Result, Scored, Timestamp, TkmError};
use tkm_window::{Window, WindowSpec};

#[derive(Debug)]
struct OracleQuery {
    query: Query,
    result: Vec<Scored>,
}

/// Ground-truth continuous top-k monitor (full rescan per tick).
#[derive(Debug)]
pub struct OracleMonitor {
    window: Window,
    queries: BTreeMap<QueryId, OracleQuery>,
}

impl OracleMonitor {
    /// Creates a monitor over `dims`-dimensional tuples.
    pub fn new(dims: usize, window: WindowSpec) -> Result<OracleMonitor> {
        Ok(OracleMonitor {
            window: Window::new(dims, window)?,
            queries: BTreeMap::new(),
        })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.window.dims()
    }

    /// The underlying window (read access).
    #[inline]
    pub fn window(&self) -> &Window {
        &self.window
    }

    fn scan(window: &Window, query: &Query) -> Vec<Scored> {
        let mut all: Vec<Scored> = window
            .iter()
            .filter(|(_, c)| query.constraint.as_ref().is_none_or(|r| r.contains(c)))
            .map(|(id, c)| Scored::new(kernel::score_point(&query.f, c), id))
            .collect();
        all.sort_by(|a, b| b.cmp(a));
        all.truncate(query.k);
        all
    }

    /// Registers a query and computes its initial result.
    pub fn register_query(&mut self, id: QueryId, query: Query) -> Result<()> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        if self.queries.contains_key(&id) {
            return Err(TkmError::DuplicateQuery(id));
        }
        let result = Self::scan(&self.window, &query);
        self.queries.insert(id, OracleQuery { query, result });
        Ok(())
    }

    /// Removes a query.
    pub fn remove_query(&mut self, id: QueryId) -> Result<()> {
        self.queries
            .remove(&id)
            .map(|_| ())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// The current top-k result, best first.
    pub fn result(&self, id: QueryId) -> Result<&[Scored]> {
        self.queries
            .get(&id)
            .map(|q| q.result.as_slice())
            .ok_or(TkmError::UnknownQuery(id))
    }

    /// One-shot (snapshot) top-k over the current window contents.
    pub fn snapshot(&self, query: &Query) -> Result<Vec<Scored>> {
        if query.dims() != self.dims() {
            return Err(TkmError::DimensionMismatch {
                expected: self.dims(),
                got: query.dims(),
            });
        }
        Ok(Self::scan(&self.window, query))
    }

    /// Executes one processing cycle.
    pub fn tick(&mut self, now: Timestamp, arrivals: &[f64]) -> Result<()> {
        let dims = self.dims();
        validate_arrivals(dims, arrivals)?;
        for coords in arrivals.chunks_exact(dims) {
            self.window.insert(coords, now)?;
        }
        self.window.drain_expired(now, |_, _| {});
        for q in self.queries.values_mut() {
            q.result = Self::scan(&self.window, &q.query);
        }
        Ok(())
    }

    /// Deep size estimate in bytes.
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.window.space_bytes()
            + self
                .queries
                .values()
                .map(|q| {
                    std::mem::size_of::<OracleQuery>()
                        + q.result.capacity() * std::mem::size_of::<Scored>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkm_common::ScoreFn;

    #[test]
    fn basic_monitoring() {
        let mut m = OracleMonitor::new(2, WindowSpec::Count(3)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0, 1.0]).unwrap(), 2).unwrap();
        m.register_query(QueryId(0), q).unwrap();
        m.tick(Timestamp(0), &[0.1, 0.1, 0.9, 0.9, 0.5, 0.5])
            .unwrap();
        let r = m.result(QueryId(0)).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].score.get(), 1.8);
        // Window capacity 3: pushing two more evicts the first two.
        m.tick(Timestamp(1), &[0.2, 0.2, 0.3, 0.3]).unwrap();
        let r = m.result(QueryId(0)).unwrap();
        assert_eq!(r[0].score.get(), 1.0, "0.5+0.5 survived, 0.9+0.9 expired");
    }

    #[test]
    fn query_lifecycle() {
        let mut m = OracleMonitor::new(1, WindowSpec::Count(2)).unwrap();
        let q = Query::top_k(ScoreFn::linear(vec![1.0]).unwrap(), 1).unwrap();
        m.register_query(QueryId(1), q).unwrap();
        assert!(m.result(QueryId(1)).unwrap().is_empty());
        m.remove_query(QueryId(1)).unwrap();
        assert!(m.result(QueryId(1)).is_err());
    }
}
