//! Fixture-corpus tests: one known-bad and one allow-suppressed
//! snippet per rule, with exact `file:line` assertions, plus a lexer
//! torture file and end-to-end checks of the installed binary
//! (exit codes and JSON diagnostics).

use std::path::PathBuf;
use std::process::Command;

use tkm_lint::lint_source;

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    (path.display().to_string(), text)
}

/// Lints a fixture and returns `(rule, line)` pairs in file order.
fn diag_lines(name: &str) -> Vec<(String, u32)> {
    let (path, text) = fixture(name);
    lint_source(&path, &text)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect()
}

#[test]
fn alloc_bad_reports_every_allocation() {
    let got = diag_lines("alloc_bad.rs");
    let want: Vec<(String, u32)> = [6, 10, 11, 12, 13, 14]
        .iter()
        .map(|&l| ("alloc".to_string(), l))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn alloc_allowed_is_clean() {
    assert_eq!(diag_lines("alloc_allowed.rs"), vec![]);
}

#[test]
fn panic_bad_reports_every_abort_path() {
    let got = diag_lines("panic_bad.rs");
    let want: Vec<(String, u32)> = [4, 5, 7, 11, 16, 17]
        .iter()
        .map(|&l| ("panic".to_string(), l))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn panic_allowed_is_clean() {
    assert_eq!(diag_lines("panic_allowed.rs"), vec![]);
}

#[test]
fn space_bad_reports_unaccounted_structs() {
    let got = diag_lines("space_bad.rs");
    let want = vec![("space".to_string(), 4), ("space".to_string(), 10)];
    assert_eq!(got, want);
}

#[test]
fn space_allowed_is_clean() {
    assert_eq!(diag_lines("space_allowed.rs"), vec![]);
}

#[test]
fn debug_assert_bad_reports_side_effects() {
    let got = diag_lines("debug_assert_bad.rs");
    let want: Vec<(String, u32)> = [5, 6, 7]
        .iter()
        .map(|&l| ("debug_assert".to_string(), l))
        .collect();
    assert_eq!(got, want);
}

#[test]
fn debug_assert_allowed_is_clean() {
    assert_eq!(diag_lines("debug_assert_allowed.rs"), vec![]);
}

#[test]
fn lexer_survives_torture_file() {
    assert_eq!(diag_lines("lexer_torture.rs"), vec![]);
}

#[test]
fn diagnostics_carry_column_spans() {
    let (path, text) = fixture("panic_bad.rs");
    let diags = lint_source(&path, &text);
    assert!(diags.iter().all(|d| d.col > 0));
    // `.unwrap()` on line 4 points at the `unwrap` identifier.
    let first = &diags[0];
    let line = text.lines().nth(first.line as usize - 1).expect("line");
    let at = &line[first.col as usize - 1..];
    assert!(at.starts_with("unwrap"), "span points at `{at}`");
}

// ---------------------------------------------------------------------
// End-to-end: the actual binary, exit codes, and JSON output.
// ---------------------------------------------------------------------

fn run_binary(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tkm_lint"))
        .args(args)
        .output()
        .expect("spawn tkm_lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn binary_exits_nonzero_on_every_known_bad_fixture() {
    for name in [
        "alloc_bad.rs",
        "panic_bad.rs",
        "space_bad.rs",
        "debug_assert_bad.rs",
    ] {
        let (path, _) = fixture(name);
        let (code, stdout) = run_binary(&["--json", &path]);
        assert_eq!(code, 1, "{name} must fail the lint");
        assert!(stdout.contains("\"diagnostics\":["), "{name}: json body");
        assert!(stdout.contains("\"line\":"), "{name}: line spans");
        assert!(
            stdout.contains(&format!("\"file\":\"{path}\"")),
            "{name}: file spans"
        );
    }
}

#[test]
fn binary_exits_zero_on_allowed_fixtures() {
    for name in [
        "alloc_allowed.rs",
        "panic_allowed.rs",
        "space_allowed.rs",
        "debug_assert_allowed.rs",
        "lexer_torture.rs",
    ] {
        let (path, _) = fixture(name);
        let (code, stdout) = run_binary(&["--json", &path]);
        assert_eq!(code, 0, "{name} must pass the lint: {stdout}");
        assert!(stdout.contains("\"violations\":0"), "{name}: clean report");
    }
}

#[test]
fn binary_version_names_tool_and_rules() {
    let (code, stdout) = run_binary(&["--version"]);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), tkm_lint::describe());
    assert!(stdout.contains("alloc, panic, space, debug_assert"));
}

#[test]
fn malformed_directives_are_violations() {
    let diags = lint_source(
        "typo.rs",
        "// lint: allow(panic)\nfn f() {}\n// lint: hotpath\nfn g() {}\n",
    );
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.rule == "directive"));
    assert_eq!((diags[0].line, diags[1].line), (1, 3));
}
