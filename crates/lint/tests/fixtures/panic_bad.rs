// Known-bad fixture for the `panic` rule.

pub fn lookup(&self, id: u64) -> u64 {
    let slot = self.slots.get(&id).unwrap(); // line 4: `.unwrap()`
    let val = self.values.get(slot).expect("slot out of range"); // line 5: `.expect()`
    if *val == 0 {
        panic!("zero value for {id}"); // line 7: `panic!`
    }
    match self.kind {
        Kind::Dense => *val,
        _ => unreachable!(), // line 11: `unreachable!`
    }
}

pub fn check(&self, n: usize) {
    assert!(n < self.len); // line 16: `assert!`
    assert_eq!(self.stamp, n as u64); // line 17: `assert_eq!`
}
