// Allow-suppressed fixture for the `alloc` rule: zero diagnostics.

// lint: hot-path
pub fn tick(&mut self, events: &[Event]) -> usize {
    // Reuses scratch capacity: no constructor calls, no collect.
    self.scratch.clear();
    for e in events {
        self.scratch.push(e.id);
    }
    // lint: allow(alloc, reason=grow-once spill path, amortized over the run)
    let spill = Vec::with_capacity(events.len());
    let n = self.scratch.len() + spill.capacity();
    n
}

// A hot block inside an otherwise cold function.
pub fn mixed(&mut self) {
    let warmup: Vec<u64> = (0..8).collect();
    // lint: hot-path
    {
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.ids);
    }
    drop(warmup);
}
