// Known-bad fixture for the `space` rule: both structs own heap memory
// and neither is reachable from any `space_bytes` accounting.

pub struct EventLog {
    // line 4: `Vec` field, no accounting anywhere
    entries: Vec<u64>,
    cursor: usize,
}

pub struct TagIndex {
    // line 10: `HashMap` field, no accounting anywhere
    by_tag: HashMap<u32, u64>,
}

impl EventLog {
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}
