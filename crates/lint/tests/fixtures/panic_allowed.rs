// Allow-suppressed fixture for the `panic` rule: zero diagnostics.

pub fn lookup(&self, id: u64) -> Result<u64> {
    let slot = self
        .slots
        .get(&id)
        .ok_or(TkmError::UnknownQuery(id))?;
    // Invariant: slots only ever hold in-bounds indices.
    debug_assert!(*slot < self.values.len());
    // lint: allow(panic, reason=slot validity is the registry's core invariant)
    Ok(*self.values.get(*slot).expect("registry invariant"))
}

pub fn lock(&self) -> MutexGuard<'_, State> {
    self.state.lock().unwrap() // lint: allow(panic, reason=poisoned mutex means a thread already panicked; propagating is correct)
}

// Compile-time assertions cannot abort a running process.
const _: () = assert!(std::mem::size_of::<u64>() == 8);

pub fn debug_only_panics(&self) {
    // Panics inside `debug_assert!` bodies are debug-only by definition.
    debug_assert!(self.slots.get(0).unwrap().is_live());
    debug_assert_eq!(self.front().expect("checked"), self.oldest);
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_freely() {
        let v: Vec<u8> = Vec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        v.first().unwrap();
        panic!("tests can panic");
    }
}
