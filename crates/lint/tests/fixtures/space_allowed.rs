// Allow-suppressed fixture for the `space` rule: zero diagnostics.
// Shows all three ways a heap-owning struct is considered covered.

/// Covered directly: the struct has its own `space_bytes` impl.
pub struct EventLog {
    entries: Vec<u64>,
}

impl EventLog {
    pub fn space_bytes(&self) -> usize {
        let helpers = self.entries.capacity() * std::mem::size_of::<HelperEntry>();
        std::mem::size_of::<Self>() + helpers
    }
}

/// Covered transitively: `HelperEntry` is mentioned inside the
/// `space_bytes` body above (its bytes are counted by the parent).
pub struct HelperEntry {
    tags: Vec<u32>,
}

/// Explicitly waived: a transient builder that never lives across a
/// tick, so it is deliberately outside the §6 space formulas.
// lint: allow(space, reason=transient builder, dropped before the tick returns)
pub struct LogBuilder {
    staged: Vec<u64>,
}
