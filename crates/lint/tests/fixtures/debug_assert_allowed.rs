// Allow-suppressed fixture for the `debug_assert` rule: zero
// diagnostics.

pub fn apply(&mut self, id: u64) {
    // The release build must do the removal too: hoist it out.
    let was_pending = self.pending.remove(&id);
    debug_assert!(was_pending);

    // Read-only assertions are fine.
    debug_assert!(self.queue.iter().all(|q| *q != id));
    debug_assert_eq!(self.queue.len(), self.expected);

    // lint: allow(debug_assert, reason=checker mutates only its own scratch buffer)
    debug_assert!(self.checker.verify_with_scratch(&mut self.scratch));

    self.applied += 1;
}
