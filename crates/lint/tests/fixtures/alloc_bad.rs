// Known-bad fixture for the `alloc` rule: every allocation below must
// be reported, with the exact lines asserted by tests/fixtures.rs.

// lint: hot-path
pub fn tick(&mut self, events: &[Event]) -> usize {
    let mut scratch = Vec::new(); // line 6: `Vec::new`
    for e in events {
        scratch.push(e.id);
    }
    let ids: Vec<u64> = events.iter().map(|e| e.id).collect(); // line 10: `.collect()`
    let owned = events.to_vec(); // line 11: `.to_vec()`
    let label = format!("tick {}", ids.len()); // line 12: `format!`
    let boxed = Box::new(owned); // line 13: `Box::new`
    let turbo = Vec::<u8>::with_capacity(label.len()); // line 14: turbofish ctor
    scratch.len() + boxed.len() + turbo.capacity()
}

pub fn cold(&mut self) -> Vec<u64> {
    // Not annotated: allocation here is fine.
    self.ids.to_vec()
}
