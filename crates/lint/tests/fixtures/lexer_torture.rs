// Lexer torture fixture: every panicking/allocating spelling below is
// literal or comment *content*, never code. Expected diagnostics: none.
// The whole file is also a library source in a space-checked crate, so
// surviving it exercises every rule's tokenizer dependence at once.

pub fn raw_strings() -> &'static str {
    let a = r"no escape \ .unwrap() here";
    let b = r#"quoted " then .expect("...") and panic!"#;
    let c = r##"hash depth two: "# still inside "## ;
    let d = "escaped quote \" then .unwrap() \\";
    let e = b"byte string with assert!(x)";
    let f = br#"raw bytes with Vec::new()"#;
    let _ = (a, b, c, d, e, f);
    "ok"
}

/* Block comment with panic!("nope") and a nested /* inner comment
   holding .unwrap() and Vec::new() */ still outer */
pub fn comments_and_chars(v: &[u8]) -> usize {
    let quote = '"';
    let backslash = '\\';
    let newline = '\n';
    let tick = '\'';
    let lifetime_like: &'static str = "still fine";
    // line comment mentioning .unwrap() and format!("{}", 1)
    v.len() + [quote, backslash, newline, tick].len() + lifetime_like.len()
}

#[rustfmt::skip]
pub fn skipped_formatting(x:u64)->u64{let y=x*2;
    let r#match = y + 1; // raw identifier
    r#match}

pub struct NoHeapFields {
    stamp: u64,
    ratio: f64,
}

pub fn ranges_and_generics(n: usize) -> usize {
    let pairs: &[(usize, usize)] = &[(0, 1)];
    let sum: usize = (0..n).sum();
    sum + pairs.len()
}
