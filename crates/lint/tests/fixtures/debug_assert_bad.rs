// Known-bad fixture for the `debug_assert` rule: side effects that
// disappear in release builds.

pub fn apply(&mut self, id: u64) {
    debug_assert!(self.pending.remove(&id)); // line 5: mutating `.remove()`
    debug_assert!(validate(&mut self.state)); // line 6: `&mut` borrow
    debug_assert_eq!(self.queue.pop(), Some(id)); // line 7: mutating `.pop()`
    self.applied += 1;
}
