//! Structural scan over the token stream.
//!
//! Recovers the minimal structure the rules need without an AST:
//!
//! * `#[cfg(test)]` item bodies (token-index ranges), so the panic rule
//!   can exempt test code;
//! * `// lint: hot-path` regions — the body of the next `fn` item, or
//!   the next bare `{ ... }` block;
//! * `// lint: allow(<rule>, reason=...)` suppressions, attached to the
//!   directive's own line and the next code line;
//! * which lines contain code tokens at all (for allow attachment);
//! * malformed-directive diagnostics, so a typo'd `// lint:` comment is
//!   itself a lint error instead of a silent no-op.

use crate::lexer::{Tok, TokKind};
use crate::{Diagnostic, RULES};

/// A half-open token-index range `[start, end)`.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// First token index inside the region.
    pub start: usize,
    /// One past the last token index inside the region.
    pub end: usize,
}

impl Region {
    /// True if token index `i` falls inside the region.
    pub fn contains(&self, i: usize) -> bool {
        self.start <= i && i < self.end
    }
}

/// One parsed `// lint: allow(rule, reason=...)` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name the directive suppresses.
    pub rule: String,
    /// 1-based line the directive comment sits on.
    pub line: u32,
}

/// Everything the structural scan learned about one file.
#[derive(Debug, Default)]
pub struct Scan {
    /// Bodies of `#[cfg(test)]` items.
    pub test_regions: Vec<Region>,
    /// Bodies of `// lint: hot-path` functions/blocks.
    pub hot_regions: Vec<Region>,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// Lines that contain at least one non-comment token.
    pub code_lines: Vec<u32>,
    /// Malformed-directive diagnostics (rule `directive`).
    pub errors: Vec<Diagnostic>,
}

impl Scan {
    /// True if token index `i` is inside a `#[cfg(test)]` item body.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|r| r.contains(i))
    }

    /// True if token index `i` is inside a hot-path region.
    pub fn in_hot(&self, i: usize) -> bool {
        self.hot_regions.iter().any(|r| r.contains(i))
    }

    /// True if a diagnostic for `rule` at `line` is suppressed by an
    /// allow directive: one on the same line, or one on an earlier line
    /// with no code line in between (so a directive on its own line
    /// covers exactly the next code line).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && (a.line == line
                    || (a.line < line && !self.code_lines.iter().any(|&l| a.line < l && l < line)))
        })
    }
}

/// Finds the body of the item starting at token `i`: skips attribute
/// groups and balanced `(...)` / `[...]` runs, then returns the token
/// range of the first top-level `{ ... }`. Returns `None` when a `;`
/// ends the item first (fieldless struct, trait method without body,
/// `use` declaration, ...).
pub(crate) fn item_body(toks: &[Tok], mut i: usize) -> Option<Region> {
    let mut depth_paren = 0i32;
    let mut depth_brack = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct('(') => depth_paren += 1,
            TokKind::Punct(')') => depth_paren -= 1,
            TokKind::Punct('[') => depth_brack += 1,
            TokKind::Punct(']') => depth_brack -= 1,
            TokKind::Punct('{') if depth_paren == 0 && depth_brack == 0 => {
                return brace_span(toks, i);
            }
            TokKind::Punct(';') if depth_paren == 0 && depth_brack == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    None
}

/// Returns the region covering the brace group opening at token `open`
/// (which must be `{`), inclusive of both braces.
fn brace_span(toks: &[Tok], open: usize) -> Option<Region> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(Region {
                        start: open,
                        end: j + 1,
                    });
                }
            }
            _ => {}
        }
    }
    // Unbalanced file: treat the region as running to EOF.
    Some(Region {
        start: open,
        end: toks.len(),
    })
}

/// Returns the token range of the attribute starting at `#` (index `i`),
/// i.e. `#[ ... ]` or `#![ ... ]`, and whether it mentions `cfg(test)`.
fn attr_span(toks: &[Tok], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    if j < toks.len() && toks[j].is_punct('!') {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('[') {
        return None;
    }
    let mut depth = 0i32;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_cfg_test = saw_cfg && saw_test && !saw_not;
                    return Some((j + 1, is_cfg_test));
                }
            }
            TokKind::Ident(s) => match s.as_str() {
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                "not" => saw_not = true,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses `// lint: ...` directives out of a comment's text. Returns
/// `Ok(None)` for ordinary comments.
enum Directive {
    HotPath,
    Allow(String),
}

fn parse_directive(text: &str) -> Result<Option<Directive>, String> {
    let body = text.trim_start_matches('/').trim();
    let Some(rest) = body.strip_prefix("lint:") else {
        return Ok(None);
    };
    let rest = rest.trim();
    if rest == "hot-path" {
        return Ok(Some(Directive::HotPath));
    }
    if let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        let (rule, reason) = match args.split_once(',') {
            Some((r, rest)) => (r.trim(), rest.trim()),
            None => (args.trim(), ""),
        };
        if !RULES.contains(&rule) {
            return Err(format!(
                "unknown rule `{rule}` in allow directive (known rules: {})",
                RULES.join(", ")
            ));
        }
        let reason_ok = reason
            .strip_prefix("reason")
            .and_then(|r| r.trim_start().strip_prefix('='))
            .map(|r| !r.trim().is_empty())
            .unwrap_or(false);
        if !reason_ok {
            return Err(format!(
                "allow directive for `{rule}` needs a non-empty `reason=...`"
            ));
        }
        return Ok(Some(Directive::Allow(rule.to_string())));
    }
    Err(format!(
        "unrecognized lint directive `{rest}` (expected `hot-path` or `allow(rule, reason=...)`)"
    ))
}

/// Runs the structural scan over `toks` for diagnostics-reporting
/// purposes against `file` (used only in error spans).
pub fn scan(file: &str, toks: &[Tok]) -> Scan {
    let mut out = Scan::default();

    let mut seen_lines = std::collections::BTreeSet::new();
    for t in toks {
        if !t.is_comment() {
            seen_lines.insert(t.line);
        }
    }
    out.code_lines = seen_lines.into_iter().collect();

    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Comment(text) => {
                match parse_directive(text) {
                    Ok(None) => {}
                    Ok(Some(Directive::Allow(rule))) => {
                        out.allows.push(Allow {
                            rule,
                            line: toks[i].line,
                        });
                    }
                    Ok(Some(Directive::HotPath)) => {
                        if let Some(region) = hot_target(toks, i + 1) {
                            out.hot_regions.push(region);
                        } else {
                            out.errors.push(Diagnostic::new(
                                "directive",
                                file,
                                toks[i].line,
                                toks[i].col,
                                "`lint: hot-path` is not followed by a function or block",
                            ));
                        }
                    }
                    Err(msg) => {
                        out.errors.push(Diagnostic::new(
                            "directive",
                            file,
                            toks[i].line,
                            toks[i].col,
                            msg,
                        ));
                    }
                }
                i += 1;
            }
            TokKind::Punct('#') => {
                match attr_span(toks, i) {
                    Some((after, true)) => {
                        // `#[cfg(test)]`: the next item's body is a test
                        // region. Skip any further attributes first.
                        let mut j = after;
                        while j < toks.len() {
                            if toks[j].is_comment() {
                                j += 1;
                            } else if toks[j].is_punct('#') {
                                match attr_span(toks, j) {
                                    Some((next, _)) => j = next,
                                    None => break,
                                }
                            } else {
                                break;
                            }
                        }
                        if let Some(region) = item_body(toks, j) {
                            out.test_regions.push(region);
                            i = region.end;
                        } else {
                            i = after;
                        }
                    }
                    Some((after, false)) => i = after,
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Resolves what a `hot-path` directive at comment index `ci` marks:
/// the body of the next `fn` item, or the next bare block.
fn hot_target(toks: &[Tok], mut i: usize) -> Option<Region> {
    // Skip comments and attributes between the directive and the item.
    while i < toks.len() {
        if toks[i].is_comment() {
            i += 1;
        } else if toks[i].is_punct('#') {
            match attr_span(toks, i) {
                Some((after, _)) => i = after,
                None => return None,
            }
        } else {
            break;
        }
    }
    if i >= toks.len() {
        return None;
    }
    if toks[i].is_punct('{') {
        return brace_span(toks, i);
    }
    // Scan a bounded window of qualifier tokens for the `fn` keyword:
    // `pub`, `pub(crate)`, `const`, `async`, `unsafe`, `extern "C"`.
    let mut j = i;
    let limit = (i + 12).min(toks.len());
    while j < limit {
        match toks[j].ident() {
            Some("fn") => return item_body(toks, j + 1),
            _ => j += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }";
        let toks = lex(src);
        let s = scan("f.rs", &toks);
        assert_eq!(s.test_regions.len(), 1);
        let unwraps: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(!s.in_test(unwraps[0]));
        assert!(s.in_test(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real { fn a() {} }";
        let s = scan("f.rs", &lex(src));
        assert!(s.test_regions.is_empty());
    }

    #[test]
    fn hot_path_marks_fn_body() {
        let src = "// lint: hot-path\npub fn tick(&mut self) -> usize { self.n }\nfn cold() { Vec::<u8>::new(); }";
        let toks = lex(src);
        let s = scan("f.rs", &toks);
        assert_eq!(s.hot_regions.len(), 1);
        let n = toks.iter().position(|t| t.ident() == Some("n")).unwrap();
        let vec = toks.iter().position(|t| t.ident() == Some("Vec")).unwrap();
        assert!(s.in_hot(n));
        assert!(!s.in_hot(vec));
    }

    #[test]
    fn hot_path_marks_bare_block() {
        let src = "fn f() { let a = 1; // lint: hot-path\n { inner(); } outer(); }";
        let toks = lex(src);
        let s = scan("f.rs", &toks);
        assert_eq!(s.hot_regions.len(), 1);
        let inner = toks
            .iter()
            .position(|t| t.ident() == Some("inner"))
            .unwrap();
        let outer = toks
            .iter()
            .position(|t| t.ident() == Some("outer"))
            .unwrap();
        assert!(s.in_hot(inner));
        assert!(!s.in_hot(outer));
    }

    #[test]
    fn dangling_hot_path_is_an_error() {
        let src = "// lint: hot-path\nuse std::fmt;";
        let s = scan("f.rs", &lex(src));
        assert_eq!(s.errors.len(), 1);
        assert!(s.errors[0].message.contains("not followed"));
    }

    #[test]
    fn allow_parses_and_attaches() {
        let src = "// lint: allow(panic, reason=mutex poisoning is fatal by design)\nlock.unwrap();\nother.unwrap();";
        let s = scan("f.rs", &lex(src));
        assert_eq!(s.allows.len(), 1);
        assert!(s.allowed("panic", 1));
        assert!(s.allowed("panic", 2));
        assert!(!s.allowed("panic", 3));
        assert!(!s.allowed("alloc", 2));
    }

    #[test]
    fn allow_requires_reason_and_known_rule() {
        let s = scan("f.rs", &lex("// lint: allow(panic)\n"));
        assert_eq!(s.errors.len(), 1);
        let s = scan("f.rs", &lex("// lint: allow(bogus, reason=x)\n"));
        assert_eq!(s.errors.len(), 1);
        assert!(s.errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn trailing_allow_suppresses_own_line() {
        let src = "lock.unwrap(); // lint: allow(panic, reason=poisoning is fatal)";
        let s = scan("f.rs", &lex(src));
        assert!(s.allowed("panic", 1));
    }
}
