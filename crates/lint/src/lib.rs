#![deny(missing_docs)]
#![forbid(unsafe_code)]

//! `tkm_lint` — workspace-aware static analysis for the top-k monitor.
//!
//! The paper's per-cycle cost model (§6, reproduced in `tkm_analysis`)
//! only predicts the measured numbers in `BENCH_hotpath.json` while two
//! structural properties hold: the steady-state maintenance tick is
//! allocation-free, and every heap-owning structure is counted by
//! `space_bytes`. Both were established by hand (PR 3 / PR 4) and were
//! previously guarded only by a coarse after-the-fact perf tripwire.
//! This crate checks them *statically*, at review time, along with two
//! robustness rules (no panicking calls in library code, no side
//! effects in `debug_assert!`).
//!
//! The analysis is deliberately token-based: a hand-rolled lexer
//! ([`lexer`]) plus a structural scan ([`scan`]) that recovers item
//! bodies, `#[cfg(test)]` regions, and `// lint:` directives. No AST,
//! no `syn`, no crates.io dependencies — it must build offline and lint
//! the workspace in milliseconds.
//!
//! See the repository README ("Static analysis") for the rule table and
//! the allow-comment grammar.

pub mod lexer;
pub mod rules;
pub mod scan;

use std::collections::BTreeMap;
use std::fmt;

/// Crate version, surfaced in `--version`, JSON reports, and the replay
/// bench's baseline-check output (so perf regressions and lint
/// violations are distinguishable in CI logs).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// The rule names accepted by `// lint: allow(<rule>, reason=...)`.
pub const RULES: &[&str] = &["alloc", "panic", "space", "debug_assert"];

/// One-line identification string: name, version, and active rules.
pub fn describe() -> String {
    format!("tkm_lint {VERSION} (rules: {})", RULES.join(", "))
}

/// A single lint finding with a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired (`alloc`, `panic`, `space`, `debug_assert`, or
    /// `directive` for malformed `// lint:` comments).
    pub rule: &'static str,
    /// Path of the offending file, as given to the linter.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic; `rule` must be one of the static rule names.
    pub fn new(
        rule: &'static str,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            col,
            message: message.into(),
        }
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"rule":{},"file":{},"line":{},"col":{},"message":{}}}"#,
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Minimal JSON string escaping (std-only, ASCII control chars + quotes
/// + backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a full machine-readable report for `--json` mode.
pub fn json_report(diags: &[Diagnostic], files_scanned: usize) -> String {
    let body: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!(
        r#"{{"tool":{},"files_scanned":{},"violations":{},"diagnostics":[{}]}}"#,
        json_str(&describe()),
        files_scanned,
        diags.len(),
        body.join(",")
    )
}

/// How a source file participates in the rules.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Cargo package name the file belongs to (e.g. `tkm_grid`).
    pub crate_name: String,
    /// True for library-target sources — the `panic` rule applies.
    /// False for `src/bin/**`, `src/main.rs`, tests, and examples.
    pub is_lib: bool,
    /// True when the crate participates in `space_bytes` accounting
    /// (`tkm_grid`, `tkm_core`, `tkm_skyband`, `tkm_window`).
    pub space_checked: bool,
}

/// One source file queued for linting.
#[derive(Debug)]
pub struct SourceFile {
    /// Path used in diagnostics (relative to the workspace root when
    /// walking a workspace).
    pub path: String,
    /// Full file contents.
    pub text: String,
    /// Rule participation.
    pub class: FileClass,
}

/// Crates whose heap-owning structs must appear in `space_bytes`
/// accounting (the space formulas of paper §6 are validated against
/// these).
pub const SPACE_CHECKED_CRATES: &[&str] = &["tkm_grid", "tkm_core", "tkm_skyband", "tkm_window"];

/// Lints a batch of files and returns all diagnostics, sorted by
/// file, line, and column. The batch matters for the `space` rule,
/// which reasons per crate across files.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut catalogs: BTreeMap<String, rules::SpaceCatalog> = BTreeMap::new();

    for f in files {
        let toks = lexer::lex(&f.text);
        let sc = scan::scan(&f.path, &toks);
        out.extend(sc.errors.iter().cloned());
        rules::per_file(f, &toks, &sc, &mut out);
        if f.class.space_checked && f.class.is_lib {
            let cat = catalogs.entry(f.class.crate_name.clone()).or_default();
            rules::collect_space(f, &toks, &sc, cat);
        }
    }
    rules::finish_space(catalogs, &mut out);

    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Convenience for tests and single-file use: lint one file treated as
/// a library source in a space-checked crate (the strictest class).
pub fn lint_source(path: &str, text: &str) -> Vec<Diagnostic> {
    lint_files(&[SourceFile {
        path: path.to_string(),
        text: text.to_string(),
        class: FileClass {
            crate_name: "fixture".to_string(),
            is_lib: true,
            space_checked: true,
        },
    }])
}
