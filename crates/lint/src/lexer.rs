//! A minimal hand-rolled Rust lexer with line/column tracking.
//!
//! The lexer understands exactly as much Rust as the rules need to be
//! sound: string literals (plain, raw, byte, raw-byte, C), char literals
//! vs lifetimes, nested block comments, numeric literals, identifiers
//! (including raw `r#ident`), and single-character punctuation. It does
//! **not** build an AST; the [`crate::scan`] layer recovers the little
//! structure the rules need (item bodies, attributes, directives) by
//! walking the token stream.
//!
//! Design constraints: `std` only, no external parser crates, and the
//! token stream must survive every file in this workspace — including
//! `#[rustfmt::skip]` blocks, raw strings containing `"` and `//`, and
//! nested `/* /* */ */` comments — without ever mistaking literal or
//! comment *content* for code.

/// What a token is, as far as the lint rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `unwrap`, `mut`, ...).
    Ident(String),
    /// Any string literal: `"..."`, `r"..."`, `r#"..."#`, `b"..."`,
    /// `br#"..."#`, `c"..."`. Content is discarded.
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`). Content discarded.
    Char,
    /// A lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
    /// A numeric literal. Content discarded.
    Num,
    /// A single punctuation character (`{`, `.`, `:`, `!`, ...).
    /// Multi-character operators appear as consecutive tokens.
    Punct(char),
    /// A line comment, `//` included (block comments are skipped).
    /// Kept as tokens so `// lint:` directives can be recovered.
    Comment(String),
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind (and text where the rules need it).
    pub kind: TokKind,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }

    /// True if this token is a comment (line comments only).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment(_))
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn eat_while(&mut self, f: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if !f(b) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. Never fails: unterminated literals
/// or comments consume to end-of-file, which is the forgiving behavior
/// a lint (as opposed to a compiler) wants.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                let start = cur.pos;
                cur.eat_while(|b| b != b'\n');
                let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                toks.push(Tok {
                    kind: TokKind::Comment(text),
                    line,
                    col,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                // Block comment; Rust block comments nest.
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
            }
            b'"' => {
                lex_string_body(&mut cur, 0);
                toks.push(Tok {
                    kind: TokKind::Str,
                    line,
                    col,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                toks.push(Tok { kind, line, col });
            }
            _ if b.is_ascii_digit() => {
                lex_number(&mut cur);
                toks.push(Tok {
                    kind: TokKind::Num,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                if let Some(kind) = lex_ident_or_prefixed(&mut cur) {
                    toks.push(Tok { kind, line, col });
                }
            }
            _ => {
                cur.bump();
                toks.push(Tok {
                    kind: TokKind::Punct(b as char),
                    line,
                    col,
                });
            }
        }
    }
    toks
}

/// Consumes a string body starting at the opening `"`, honoring escapes
/// and, when `hashes > 0`, raw-string `"##...#` terminators.
fn lex_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    cur.bump(); // opening quote
    loop {
        match cur.peek() {
            None => break,
            Some(b'\\') if hashes == 0 => {
                cur.bump();
                cur.bump();
            }
            Some(b'"') => {
                cur.bump();
                if hashes == 0 {
                    break;
                }
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some(b'#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
            Some(_) => {
                cur.bump();
            }
        }
    }
}

/// Disambiguates `'a'` / `b'\n'` (char literal) from `'a` (lifetime).
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // the quote
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then to closing quote.
            cur.bump();
            cur.bump();
            cur.eat_while(|b| b != b'\'' && b != b'\n');
            cur.bump();
            TokKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // `'a'` is a char, `'a` / `'abc` is a lifetime. Consume the
            // identifier; a following `'` makes it a char literal.
            cur.eat_while(is_ident_cont);
            if cur.peek() == Some(b'\'') {
                cur.bump();
                TokKind::Char
            } else {
                TokKind::Lifetime
            }
        }
        Some(_) => {
            // Punctuation char literal like '(' or '"'.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokKind::Char
        }
        None => TokKind::Lifetime,
    }
}

fn lex_number(cur: &mut Cursor<'_>) {
    // Digits, underscores, type suffixes, hex/oct/bin bodies.
    cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    // A fractional part: `.` followed by a digit (so `0..n` stays a range).
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // Exponent sign: `1e-3` / `2.5E+10` leave a trailing `e` consumed above.
    if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
        let prev = cur.src.get(cur.pos.wrapping_sub(1)).copied();
        if matches!(prev, Some(b'e') | Some(b'E')) {
            cur.bump();
            cur.eat_while(|b| b.is_ascii_digit() || b == b'_');
        }
    }
}

/// Lexes an identifier, handling the prefixed literal forms that start
/// like identifiers: `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`,
/// `b'x'`, `c"..."`, and raw identifiers `r#match`.
fn lex_ident_or_prefixed(cur: &mut Cursor<'_>) -> Option<TokKind> {
    let start = cur.pos;
    let first = cur.peek()?;
    cur.bump();

    // Possible literal prefixes: r, b, br, rb(c), c ... check before
    // consuming more identifier characters.
    let second = cur.peek();
    match (first, second) {
        (b'r' | b'b' | b'c', Some(b'"')) => {
            lex_string_body(cur, 0);
            return Some(TokKind::Str);
        }
        (b'b', Some(b'\'')) => {
            return Some(lex_quote(cur));
        }
        (b'r' | b'b' | b'c', Some(b'#')) => {
            // Count hashes; a quote after them means raw string, an
            // identifier char means raw identifier (only after `r#`).
            let mut off = 0usize;
            while cur.peek_at(off) == Some(b'#') {
                off += 1;
            }
            match cur.peek_at(off) {
                Some(b'"') => {
                    for _ in 0..off {
                        cur.bump();
                    }
                    lex_string_body(cur, off);
                    return Some(TokKind::Str);
                }
                _ if first == b'r' && off == 1 => {
                    cur.bump(); // the '#'
                    cur.eat_while(is_ident_cont);
                    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
                    return Some(TokKind::Ident(text));
                }
                _ => {}
            }
        }
        (b'b', Some(b'r')) if cur.peek_at(1) == Some(b'"') || cur.peek_at(1) == Some(b'#') => {
            cur.bump(); // the 'r'
            if cur.peek() == Some(b'"') {
                lex_string_body(cur, 0);
                return Some(TokKind::Str);
            }
            let mut off = 0usize;
            while cur.peek_at(off) == Some(b'#') {
                off += 1;
            }
            if cur.peek_at(off) == Some(b'"') {
                for _ in 0..off {
                    cur.bump();
                }
                lex_string_body(cur, off);
                return Some(TokKind::Str);
            }
        }
        _ => {}
    }

    cur.eat_while(is_ident_cont);
    let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
    Some(TokKind::Ident(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_string_content_is_not_code() {
        let src = r####"let s = r#"call .unwrap() // not a comment "#; s.len()"####;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn ok() {}";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "ok"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("let c = 'x'; fn f<'a>(v: &'a str) -> &'a str { v }");
        let chars = toks.iter().filter(|t| t.kind == TokKind::Char).count();
        let lifes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(chars, 1);
        assert_eq!(lifes, 3);
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("fn a() {}\n  let b = 1;");
        let b = toks.iter().find(|t| t.ident() == Some("b")).expect("b");
        assert_eq!((b.line, b.col), (2, 7));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let ids = idents(r#"let s = "escaped \" .unwrap() \\"; s.len()"#);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
    }

    #[test]
    fn byte_and_c_strings() {
        let src = r##"let a = b"panic!"; let b = br#"todo!"#; let c = c"assert!";"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "panic" || s == "todo" || s == "assert"));
    }

    #[test]
    fn raw_identifiers() {
        let ids = idents("let r#fn = 1; r#fn + 2");
        assert_eq!(ids.iter().filter(|s| *s == "r#fn").count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 {}");
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
