//! The four repo-specific rules.
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `alloc` | `// lint: hot-path` regions | heap-allocating calls on the steady-state tick path |
//! | `panic` | library targets, outside `#[cfg(test)]` | `unwrap`/`expect`/`panic!`-family calls |
//! | `space` | structs in the space-accounted crates | heap-owning structs missing from `space_bytes` accounting |
//! | `debug_assert` | every `debug_assert!` | side effects that vanish in release builds |

use std::collections::{BTreeMap, HashSet};

use crate::lexer::{Tok, TokKind};
use crate::scan::Scan;
use crate::{Diagnostic, SourceFile};

/// Container types whose constructors allocate.
const ALLOC_CONTAINERS: &[&str] = &[
    "Vec", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "VecDeque", "Rc", "Arc",
];

/// Allocating associated functions on those containers.
const ALLOC_CTORS: &[&str] = &[
    "new",
    "with_capacity",
    "with_capacity_and_hasher",
    "from",
    "from_iter",
    "default",
];

/// Allocating method calls.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string", "clone"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["format", "vec"];

/// Macros that abort the process when reached.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods that panic on the unhappy path.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Heap-owning field types that must show up in space accounting.
const HEAP_FIELD_TYPES: &[&str] = &[
    "Vec",
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "VecDeque",
    "String",
];

/// Mutating method names that must not appear inside `debug_assert!`.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "swap_remove",
    "take",
    "replace",
    "clear",
    "drain",
    "truncate",
    "retain",
    "extend",
    "append",
    "resize",
    "reserve",
    "dedup",
    "split_off",
    "fill",
    "swap",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
];

/// Skips a balanced `<...>` group starting at `i` (which must be `<`);
/// returns the index just past the matching `>`. `>>` lexes as two
/// tokens, so plain depth counting works.
fn skip_angles(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            // A `;` or `{` inside an unclosed angle run means this was a
            // comparison, not generics; bail out where we started.
            TokKind::Punct(';') | TokKind::Punct('{') => return i + 1,
            _ => {}
        }
        j += 1;
    }
    i + 1
}

/// Returns the index of the next non-comment token at or after `i`.
fn next_code(toks: &[Tok], mut i: usize) -> Option<usize> {
    while i < toks.len() {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// After a callee identifier, steps over an optional turbofish
/// (`::<...>`) and reports whether a call-open `(` follows.
fn call_follows(toks: &[Tok], i: usize) -> bool {
    let Some(mut j) = next_code(toks, i) else {
        return false;
    };
    if toks[j].is_punct(':') && next_code(toks, j + 1).is_some_and(|k| toks[k].is_punct(':')) {
        let Some(k) = next_code(toks, j + 1) else {
            return false;
        };
        let Some(l) = next_code(toks, k + 1) else {
            return false;
        };
        if toks[l].is_punct('<') {
            j = skip_angles(toks, l);
        } else {
            return false;
        }
    }
    next_code(toks, j).is_some_and(|k| toks[k].is_punct('('))
}

/// Matches `Container::method` starting at the container ident `i`,
/// stepping over one optional turbofish (`Vec::<u8>::new`). Returns the
/// method name on a match.
fn path_ctor(toks: &[Tok], i: usize) -> Option<&str> {
    let c1 = next_code(toks, i + 1)?;
    if !toks[c1].is_punct(':') {
        return None;
    }
    let c2 = next_code(toks, c1 + 1)?;
    if !toks[c2].is_punct(':') {
        return None;
    }
    let mut j = next_code(toks, c2 + 1)?;
    if toks[j].is_punct('<') {
        j = skip_angles(toks, j);
        let c3 = next_code(toks, j)?;
        if !toks[c3].is_punct(':') {
            return None;
        }
        let c4 = next_code(toks, c3 + 1)?;
        if !toks[c4].is_punct(':') {
            return None;
        }
        j = next_code(toks, c4 + 1)?;
    }
    toks[j].ident()
}

/// Collects the argument spans of every `debug_assert*!` invocation:
/// code inside them only runs in debug builds, so the `panic` rule does
/// not apply there (the assertion aborting is the point).
fn debug_assert_spans(toks: &[Tok]) -> Vec<crate::scan::Region> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        if !name.starts_with("debug_assert") {
            continue;
        }
        let Some(bang) = next_code(toks, i + 1) else {
            continue;
        };
        if !toks[bang].is_punct('!') {
            continue;
        }
        let Some(open) = next_code(toks, bang + 1) else {
            continue;
        };
        let span = match toks[open].kind {
            TokKind::Punct('(') => paren_span(toks, open),
            TokKind::Punct('{') => crate::scan::item_body(toks, open),
            _ => None,
        };
        if let Some(r) = span {
            out.push(r);
        }
    }
    out
}

/// True when the token at `i` sits in a `const` item initializer
/// (`const _: () = assert!(...)`): the assertion is evaluated at
/// compile time, so it cannot abort a running process. The check scans
/// back to the nearest statement boundary for `const` plus `=`.
fn in_const_item(toks: &[Tok], i: usize) -> bool {
    let mut saw_const = false;
    let mut saw_eq = false;
    for t in toks[..i].iter().rev() {
        match &t.kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            TokKind::Punct('=') => saw_eq = true,
            TokKind::Ident(s) if s == "const" => saw_const = true,
            _ => {}
        }
    }
    saw_const && saw_eq
}

/// Runs the three per-file rules (`alloc`, `panic`, `debug_assert`).
pub fn per_file(file: &SourceFile, toks: &[Tok], scan: &Scan, out: &mut Vec<Diagnostic>) {
    let debug_spans = debug_assert_spans(toks);
    for (i, t) in toks.iter().enumerate() {
        let Some(name) = t.ident() else { continue };
        let in_test = scan.in_test(i);
        let in_debug_assert = debug_spans.iter().any(|r| r.contains(i));

        // --- alloc: hot-path regions must not allocate ---------------
        if scan.in_hot(i) && !in_test {
            let mut hit: Option<String> = None;
            if ALLOC_CONTAINERS.contains(&name) {
                if let Some(m) = path_ctor(toks, i) {
                    if ALLOC_CTORS.contains(&m) {
                        hit = Some(format!("`{name}::{m}`"));
                    }
                }
            }
            if hit.is_none()
                && ALLOC_MACROS.contains(&name)
                && next_code(toks, i + 1).is_some_and(|j| toks[j].is_punct('!'))
            {
                hit = Some(format!("`{name}!`"));
            }
            if hit.is_none()
                && ALLOC_METHODS.contains(&name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && call_follows(toks, i + 1)
            {
                hit = Some(format!("`.{name}()`"));
            }
            if let Some(what) = hit {
                if !scan.allowed("alloc", t.line) {
                    out.push(Diagnostic::new(
                        "alloc",
                        &file.path,
                        t.line,
                        t.col,
                        format!(
                            "{what} allocates inside a `lint: hot-path` region; reuse scratch \
                             capacity or add `// lint: allow(alloc, reason=...)`"
                        ),
                    ));
                }
            }
        }

        // --- panic: library code must return errors, not abort -------
        if file.class.is_lib && !in_test && !in_debug_assert {
            let mut hit: Option<String> = None;
            if PANIC_MACROS.contains(&name)
                && next_code(toks, i + 1).is_some_and(|j| toks[j].is_punct('!'))
                && !in_const_item(toks, i)
            {
                hit = Some(format!("`{name}!`"));
            }
            if hit.is_none()
                && PANIC_METHODS.contains(&name)
                && i > 0
                && toks[i - 1].is_punct('.')
                && call_follows(toks, i + 1)
            {
                hit = Some(format!("`.{name}()`"));
            }
            if let Some(what) = hit {
                if !scan.allowed("panic", t.line) {
                    out.push(Diagnostic::new(
                        "panic",
                        &file.path,
                        t.line,
                        t.col,
                        format!(
                            "{what} can abort library code; return a `TkmError`, use a \
                             `debug_assert!`, or add `// lint: allow(panic, reason=...)`"
                        ),
                    ));
                }
            }
        }

        // --- debug_assert: assertions must be side-effect-free -------
        if name.starts_with("debug_assert") {
            check_debug_assert(file, toks, scan, i, out);
        }
    }
}

/// Flags `&mut` borrows and known-mutating method calls inside the
/// argument list of the `debug_assert*!` at ident index `i`.
fn check_debug_assert(
    file: &SourceFile,
    toks: &[Tok],
    scan: &Scan,
    i: usize,
    out: &mut Vec<Diagnostic>,
) {
    let Some(bang) = next_code(toks, i + 1) else {
        return;
    };
    if !toks[bang].is_punct('!') {
        return;
    }
    let Some(open) = next_code(toks, bang + 1) else {
        return;
    };
    let (op, cl) = match toks[open].kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('{') => ('{', '}'),
        _ => return,
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct(c) if c == op => depth += 1,
            TokKind::Punct(c) if c == cl => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        let t = &toks[j];
        let mut hit: Option<String> = None;
        if t.is_punct('&') && next_code(toks, j + 1).is_some_and(|k| toks[k].ident() == Some("mut"))
        {
            hit = Some("`&mut` borrow".to_string());
        }
        if let Some(m) = t.ident() {
            if MUTATING_METHODS.contains(&m)
                && j > 0
                && toks[j - 1].is_punct('.')
                && call_follows(toks, j + 1)
            {
                hit = Some(format!("mutating call `.{m}()`"));
            }
        }
        if let Some(what) = hit {
            if !scan.allowed("debug_assert", t.line) {
                out.push(Diagnostic::new(
                    "debug_assert",
                    &file.path,
                    t.line,
                    t.col,
                    format!(
                        "{what} inside `debug_assert!` runs only in debug builds; hoist the \
                         side effect out or add `// lint: allow(debug_assert, reason=...)`"
                    ),
                ));
            }
        }
        j += 1;
    }
}

/// Per-crate facts the space rule accumulates across files.
#[derive(Debug, Default)]
pub struct SpaceCatalog {
    /// Type names that are the target of an `impl` containing
    /// `fn space_bytes`.
    covered: HashSet<String>,
    /// Every identifier mentioned inside any `space_bytes` body —
    /// catches helper structs accounted via `size_of::<Helper>()`.
    mentioned: HashSet<String>,
    /// Heap-owning struct declarations awaiting the coverage check.
    candidates: Vec<SpaceCandidate>,
}

#[derive(Debug)]
struct SpaceCandidate {
    name: String,
    file: String,
    line: u32,
    col: u32,
    field_type: String,
    suppressed: bool,
}

/// Collects space-rule facts from one file into the crate's catalog.
pub fn collect_space(file: &SourceFile, toks: &[Tok], scan: &Scan, cat: &mut SpaceCatalog) {
    let mut i = 0usize;
    while i < toks.len() {
        match toks[i].ident() {
            Some("struct") if !scan.in_test(i) => {
                i = collect_struct(file, toks, scan, i, cat);
            }
            Some("impl") => {
                i = collect_impl(toks, i, cat);
            }
            _ => i += 1,
        }
    }
}

/// Handles one `struct` item; returns the index to resume scanning at.
fn collect_struct(
    file: &SourceFile,
    toks: &[Tok],
    scan: &Scan,
    i: usize,
    cat: &mut SpaceCatalog,
) -> usize {
    let Some(ni) = next_code(toks, i + 1) else {
        return i + 1;
    };
    let Some(name) = toks[ni].ident() else {
        return i + 1;
    };
    let name = name.to_string();
    let (line, col) = (toks[i].line, toks[i].col);

    // Body: `{ fields }`, tuple `( fields ) ;`, or unit `;`.
    let mut j = next_code(toks, ni + 1).unwrap_or(toks.len());
    if j < toks.len() && toks[j].is_punct('<') {
        j = skip_angles(toks, j);
    }
    let body = match crate::scan::item_body(toks, j) {
        Some(r) => r,
        None => {
            // Tuple struct: fields live in the `(...)` group.
            match next_code(toks, j) {
                Some(k) if toks[k].is_punct('(') => match paren_span(toks, k) {
                    Some(r) => r,
                    None => return j,
                },
                _ => return j,
            }
        }
    };

    // Find the first heap-owning field type in the body.
    let mut k = body.start;
    while k < body.end {
        if let Some(ty) = toks[k].ident() {
            let heap = HEAP_FIELD_TYPES.contains(&ty)
                || (ty == "Box"
                    && next_code(toks, k + 1).is_some_and(|a| toks[a].is_punct('<'))
                    && next_code(toks, k + 1)
                        .and_then(|a| next_code(toks, a + 1))
                        .is_some_and(|b| toks[b].is_punct('[')));
            if heap {
                let suppressed = scan.allowed("space", line)
                    || scan.allowed("space", toks[ni].line)
                    || scan.allowed("space", toks[k].line);
                cat.candidates.push(SpaceCandidate {
                    name,
                    file: file.path.clone(),
                    line,
                    col,
                    field_type: ty.to_string(),
                    suppressed,
                });
                return body.end;
            }
        }
        k += 1;
    }
    body.end
}

/// Returns the span of the `(...)` group opening at `open`.
fn paren_span(toks: &[Tok], open: usize) -> Option<crate::scan::Region> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Punct('(') => depth += 1,
            TokKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(crate::scan::Region {
                        start: open,
                        end: j + 1,
                    });
                }
            }
            _ => {}
        }
    }
    None
}

/// Handles one `impl` item: records its target as covered when the body
/// declares `fn space_bytes`, and harvests identifiers mentioned inside
/// that function. Returns the index to resume at (just after the impl
/// header, so nested items are still scanned normally).
fn collect_impl(toks: &[Tok], i: usize, cat: &mut SpaceCatalog) -> usize {
    // Header: `impl [<...>] Path [for Path] [where ...] {`.
    let mut j = next_code(toks, i + 1).unwrap_or(toks.len());
    if j < toks.len() && toks[j].is_punct('<') {
        j = skip_angles(toks, j);
    }
    let mut target: Option<String> = None;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') | TokKind::Punct(';') => break,
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle -= 1,
            TokKind::Ident(s) if s == "for" => {
                // Trait impl: only the type after `for` is the target.
                target = None;
            }
            TokKind::Ident(s) if s == "where" => break,
            TokKind::Ident(s) if angle == 0 => target = Some(s.clone()),
            _ => {}
        }
        j += 1;
    }
    let Some(target) = target else { return j };
    let Some(body) = crate::scan::item_body(toks, i + 1) else {
        return j;
    };

    // Look for `fn space_bytes` directly inside the impl body.
    let mut k = body.start;
    while k < body.end {
        if toks[k].ident() == Some("fn")
            && next_code(toks, k + 1).is_some_and(|n| toks[n].ident() == Some("space_bytes"))
        {
            cat.covered.insert(target.clone());
            if let Some(fnbody) = crate::scan::item_body(toks, k + 1) {
                for t in &toks[fnbody.start..fnbody.end] {
                    if let Some(id) = t.ident() {
                        cat.mentioned.insert(id.to_string());
                    }
                }
                k = fnbody.end;
                continue;
            }
        }
        k += 1;
    }
    j
}

/// Emits the space-rule diagnostics once every file of a crate has been
/// collected.
pub fn finish_space(catalogs: BTreeMap<String, SpaceCatalog>, out: &mut Vec<Diagnostic>) {
    for (_crate_name, cat) in catalogs {
        for c in &cat.candidates {
            if c.suppressed || cat.covered.contains(&c.name) || cat.mentioned.contains(&c.name) {
                continue;
            }
            out.push(Diagnostic::new(
                "space",
                &c.file,
                c.line,
                c.col,
                format!(
                    "struct `{}` owns heap memory (`{}` field) but is not covered by any \
                     `space_bytes` accounting in this crate; account for it or add \
                     `// lint: allow(space, reason=...)`",
                    c.name, c.field_type
                ),
            ));
        }
    }
}
