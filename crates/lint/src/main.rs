//! CLI for `tkm_lint`.
//!
//! ```text
//! tkm_lint [--root DIR] [--json] [FILES...]
//! tkm_lint --version
//! ```
//!
//! With no `FILES`, walks the workspace under `--root` (default: the
//! current directory): every `crates/*/src/**/*.rs` plus the root
//! package's `src/`. Explicit `FILES` are linted under the strictest
//! class (library source in a space-checked crate) — this is what the
//! fixture tests and pre-commit spot checks use.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

// A CLI tool: stdout is the interface.
#![allow(clippy::print_stdout)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tkm_lint::{describe, json_report, lint_files, FileClass, SourceFile, SPACE_CHECKED_CRATES};

struct Options {
    root: PathBuf,
    json: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: tkm_lint [--root DIR] [--json] [FILES...]\n       tkm_lint --version"
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut files = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--version" | "-V" => {
                println!("{}", describe());
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            "--json" => json = true,
            "--root" => {
                root = PathBuf::from(
                    args.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            f if !f.starts_with('-') => files.push(PathBuf::from(f)),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(Some(Options { root, json, files }))
}

/// Reads the `name = "..."` of a crate manifest with a plain line scan
/// (std-only; the workspace's manifests are simple enough).
fn package_name(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
        if line.starts_with('[') && line != "[package]" {
            break;
        }
    }
    None
}

/// Recursively collects `.rs` files under `dir`.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// Loads one crate's library sources (`<crate>/src/**/*.rs`) with the
/// right per-file class.
fn load_crate(
    root: &Path,
    crate_dir: &Path,
    crate_name: &str,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut paths = Vec::new();
    rs_files(&src, &mut paths)?;
    for p in paths {
        let is_bin = p.file_name().is_some_and(|f| f == "main.rs")
            || p.strip_prefix(&src).is_ok_and(|r| r.starts_with("bin"));
        let text = std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let display = p.strip_prefix(root).unwrap_or(&p).display().to_string();
        out.push(SourceFile {
            path: display,
            text,
            class: FileClass {
                crate_name: crate_name.to_string(),
                is_lib: !is_bin,
                space_checked: SPACE_CHECKED_CRATES.contains(&crate_name),
            },
        });
    }
    Ok(())
}

/// Walks the whole workspace: `crates/*` plus the root package.
fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let entries =
        std::fs::read_dir(&crates).map_err(|e| format!("read_dir {}: {e}", crates.display()))?;
    let mut dirs: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Some(name) = package_name(&dir.join("Cargo.toml")) else {
            continue;
        };
        load_crate(root, &dir, &name, &mut out)?;
    }
    if let Some(name) = package_name(&root.join("Cargo.toml")) {
        load_crate(root, root, &name, &mut out)?;
    }
    Ok(out)
}

fn run() -> Result<ExitCode, String> {
    let Some(opts) = parse_args()? else {
        return Ok(ExitCode::SUCCESS);
    };

    let files = if opts.files.is_empty() {
        load_workspace(&opts.root)?
    } else {
        let mut out = Vec::new();
        for p in &opts.files {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
            out.push(SourceFile {
                path: p.display().to_string(),
                text,
                class: FileClass {
                    crate_name: "adhoc".to_string(),
                    is_lib: true,
                    space_checked: true,
                },
            });
        }
        out
    };

    let diags = lint_files(&files);
    if opts.json {
        println!("{}", json_report(&diags, files.len()));
    } else {
        println!("{}", describe());
        for d in &diags {
            println!("{d}");
        }
        println!(
            "{} file(s) scanned, {} violation(s)",
            files.len(),
            diags.len()
        );
    }
    Ok(if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("tkm_lint: {msg}");
            ExitCode::from(2)
        }
    }
}
